#include "explore/mutator.hpp"

#include <algorithm>

namespace bftcup::explore {
namespace {

enum class Op : std::uint8_t {
  kAddEdge,
  kRemoveEdge,
  kAddVertex,
  kRemoveVertex,
  kToggleFaulty,
  kBumpF,
  kFlipMode,
  kFlipByz,
  kFakePd,
  kTimelineAdd,
  kTimelineRemove,
  kGst,
  kDelta,
  kHorizon,
  kSeed,
  kWireRate,
  kWireMasks,
  kLoss,
  kLossBurst,
};

/// Draw table: each operator appears `weight` times. Biased toward the
/// adversary-controlled dimensions (see file comment).
constexpr Op kOpTable[] = {
    Op::kAddEdge,        Op::kAddEdge,        Op::kRemoveEdge,
    Op::kRemoveEdge,     Op::kAddVertex,      Op::kRemoveVertex,
    Op::kToggleFaulty,   Op::kToggleFaulty,   Op::kBumpF,
    Op::kFlipMode,       Op::kFlipByz,        Op::kFlipByz,
    Op::kFakePd,         Op::kFakePd,         Op::kFakePd,
    Op::kFakePd,         Op::kTimelineAdd,    Op::kTimelineAdd,
    Op::kTimelineAdd,    Op::kTimelineRemove, Op::kTimelineRemove,
    Op::kGst,            Op::kDelta,          Op::kHorizon,
    Op::kSeed,           Op::kSeed,
};

/// Appended to the draw table when MutatorOptions::wire_ops is on. Kept in
/// a separate table so disabling the knob reproduces the pre-wire operator
/// distribution exactly.
constexpr Op kWireOpTable[] = {
    Op::kWireRate, Op::kWireRate, Op::kWireMasks,
    Op::kLoss,     Op::kLoss,     Op::kLossBurst,
};

/// Frame-mutation rates (permille) the kWireRate operator draws from; 0
/// turns the layer back off.
constexpr std::uint32_t kWireRates[] = {0, 25, 50, 100, 250, 500};

/// Per-send drop probabilities (permille) for kLoss. Values above ~25% stop
/// most runs from terminating at all; the tail exists to probe that edge.
constexpr std::uint32_t kLossRates[] = {0, 10, 25, 50, 100, 250};

ProcessId pick(const IdSet& ids, Rng& rng) {
  return ids.values()[rng.next_below(ids.size())];
}

std::uint64_t max_raw_id(const graph::Digraph& g) {
  std::uint64_t max_raw = 0;
  for (ProcessId id : g.vertices()) max_raw = std::max(max_raw, id.raw());
  return max_raw;
}

/// A member id for fake-PD advertisement: usually a real vertex, sometimes
/// a ghost (an id nobody owns — naming non-existent processes is a real
/// attack; answering for them is not possible, §II-A).
ProcessId pick_advertisable(const graph::Digraph& g, Rng& rng) {
  if (rng.chance(0.2)) {
    return ProcessId(max_raw_id(g) + 1 + rng.next_below(3));
  }
  return pick(g.vertices(), rng);
}

void mutate_fake_pd(Genome& genome, Rng& rng) {
  if (genome.faulty.empty()) return;
  genome.byz = cup::ByzBehavior::kFakePd;
  const ProcessId owner = pick(genome.faulty, rng);
  auto it = genome.fake_pds.find(owner);
  if (it == genome.fake_pds.end()) {
    it = genome.fake_pds.emplace(owner, genome.graph.out_neighbors(owner))
             .first;
  }
  IdSet& advertised = it->second;
  if (!advertised.empty() && rng.chance(0.6)) {
    // Hide a target — the bridge-hiding family of attacks.
    advertised.erase(pick(advertised, rng));
  } else {
    advertised.insert(pick_advertisable(genome.graph, rng));
  }
}

void add_timeline_gene(Genome& genome, Rng& rng, SimTime max_window) {
  const IdSet vertices = genome.graph.vertices();
  TimelineGene gene;
  gene.at = static_cast<SimTime>(
      rng.next_below(static_cast<std::uint64_t>(max_window) + 1));
  switch (rng.next_below(5)) {
    case 0: {  // crash, usually paired with a recover
      gene.kind = TimelineGene::Kind::kCrash;
      gene.subject = pick(vertices, rng);
      genome.timeline.push_back(gene);
      if (rng.chance(0.7)) {
        TimelineGene recover;
        recover.kind = TimelineGene::Kind::kRecover;
        recover.subject = gene.subject;
        recover.at = gene.at + 1 +
                     static_cast<SimTime>(rng.next_below(
                         static_cast<std::uint64_t>(max_window) + 1));
        genome.timeline.push_back(recover);
      }
      return;
    }
    case 1:
      gene.kind = TimelineGene::Kind::kRecover;
      gene.subject = pick(vertices, rng);
      break;
    case 2: {
      gene.kind = TimelineGene::Kind::kDrop;
      gene.subject = pick(vertices, rng);
      do {
        gene.peer = pick(vertices, rng);
      } while (gene.peer == gene.subject && vertices.size() > 1);
      gene.until = gene.at + 1 +
                   static_cast<SimTime>(rng.next_below(
                       static_cast<std::uint64_t>(max_window) + 1));
      break;
    }
    case 3: {
      gene.kind = TimelineGene::Kind::kPartition;
      std::vector<ProcessId> shuffled = vertices.values();
      rng.shuffle(shuffled);
      const std::size_t a_count = 1 + rng.next_below(shuffled.size() - 1);
      for (std::size_t i = 0; i < shuffled.size(); ++i) {
        (i < a_count ? gene.group_a : gene.group_b).insert(shuffled[i]);
      }
      gene.until = gene.at + 1 +
                   static_cast<SimTime>(rng.next_below(
                       static_cast<std::uint64_t>(max_window) + 1));
      break;
    }
    default:
      gene.kind = TimelineGene::Kind::kJoin;
      gene.subject = pick(vertices, rng);
      break;
  }
  genome.timeline.push_back(gene);
}

}  // namespace

Genome Mutator::mutate_once(const Genome& parent, Rng& rng) const {
  Genome genome = parent;
  const IdSet vertices = genome.graph.vertices();
  const std::size_t n = vertices.size();
  if (n == 0) return genome;

  const std::size_t table_size =
      std::size(kOpTable) +
      (options_.wire_ops ? std::size(kWireOpTable) : 0);
  const std::size_t draw = rng.next_below(table_size);
  const Op op = draw < std::size(kOpTable)
                    ? kOpTable[draw]
                    : kWireOpTable[draw - std::size(kOpTable)];
  switch (op) {
    case Op::kAddEdge: {
      const ProcessId from = pick(vertices, rng);
      const ProcessId to = pick(vertices, rng);
      genome.graph.add_edge(from, to);  // self-loops are ignored by Digraph
      break;
    }
    case Op::kRemoveEdge: {
      const auto edges = edges_of(genome.graph);
      if (edges.empty()) break;
      const auto& [from, to] = edges[rng.next_below(edges.size())];
      genome.graph = without_edge(genome.graph, from, to);
      break;
    }
    case Op::kAddVertex: {
      if (n >= options_.max_vertices) break;
      const ProcessId fresh(max_raw_id(genome.graph) + 1);
      const ProcessId anchor = pick(vertices, rng);
      genome.graph.add_edge(fresh, anchor);
      if (rng.chance(0.5)) genome.graph.add_edge(anchor, fresh);
      break;
    }
    case Op::kRemoveVertex: {
      if (n <= 3) break;
      genome = without_vertex(genome, pick(vertices, rng));
      break;
    }
    case Op::kToggleFaulty: {
      const ProcessId v = pick(vertices, rng);
      if (genome.faulty.contains(v)) {
        genome.faulty.erase(v);
        genome.fake_pds.erase(v);
      } else {
        genome.faulty.insert(v);
      }
      break;
    }
    case Op::kBumpF: {
      if (rng.chance(0.5)) {
        ++genome.f;
      } else if (genome.f > 1) {
        --genome.f;
      }
      break;
    }
    case Op::kFlipMode: {
      constexpr cup::Mode kModes[] = {cup::Mode::kAuth, cup::Mode::kCupft,
                                      cup::Mode::kNaive};
      genome.mode = kModes[rng.next_below(std::size(kModes))];
      break;
    }
    case Op::kFlipByz: {
      constexpr cup::ByzBehavior kBehaviors[] = {
          cup::ByzBehavior::kSilent, cup::ByzBehavior::kFakePd,
          cup::ByzBehavior::kEquivocate, cup::ByzBehavior::kWrongValue};
      genome.byz = kBehaviors[rng.next_below(std::size(kBehaviors))];
      if (genome.byz != cup::ByzBehavior::kFakePd) {
        genome.fake_pds.clear();
      } else {
        mutate_fake_pd(genome, rng);
      }
      break;
    }
    case Op::kFakePd:
      mutate_fake_pd(genome, rng);
      break;
    case Op::kTimelineAdd:
      if (genome.timeline.size() >= options_.max_timeline) break;
      add_timeline_gene(genome, rng, genome.horizon / 8);
      break;
    case Op::kTimelineRemove: {
      if (genome.timeline.empty()) break;
      genome.timeline.erase(genome.timeline.begin() +
                            static_cast<std::ptrdiff_t>(
                                rng.next_below(genome.timeline.size())));
      break;
    }
    case Op::kGst:
      genome.gst = static_cast<SimTime>(
          rng.next_below(static_cast<std::uint64_t>(options_.max_gst) + 1));
      break;
    case Op::kDelta:
      genome.delta = 1 + static_cast<SimTime>(rng.next_below(
                             static_cast<std::uint64_t>(options_.max_delta)));
      break;
    case Op::kHorizon:
      genome.horizon = rng.chance(0.5) ? genome.horizon * 2 : genome.horizon / 2;
      genome.horizon =
          std::clamp(genome.horizon, options_.min_horizon, options_.max_horizon);
      break;
    case Op::kSeed:
      genome.seed = 1 + rng.next_below(1'000'000);
      break;
    case Op::kWireRate:
      genome.wire_rate_pm = kWireRates[rng.next_below(std::size(kWireRates))];
      break;
    case Op::kWireMasks: {
      // Masks are inert at rate 0 (to_line would not even serialize them),
      // so mask mutation implies turning the layer on.
      if (genome.wire_rate_pm == 0) genome.wire_rate_pm = 100;
      if (rng.chance(0.5)) {
        genome.wire_kinds = static_cast<std::uint32_t>(
            1 + rng.next_below(sim::kAllWireMutationKinds));
      } else {
        genome.wire_types = static_cast<std::uint32_t>(
            1 + rng.next_below(sim::kAllWireMsgTypes));
      }
      break;
    }
    case Op::kLoss:
      genome.loss_pm = kLossRates[rng.next_below(std::size(kLossRates))];
      genome.loss_jitter =
          static_cast<SimTime>(rng.next_below(3)) * genome.delta;
      break;
    case Op::kLossBurst:
      if (genome.burst_len > 0) {
        genome.burst_start = 0;
        genome.burst_len = 0;
        genome.burst_period = 0;
      } else {
        const SimTime window = std::max<SimTime>(genome.horizon / 8, 1);
        genome.burst_start = static_cast<SimTime>(
            rng.next_below(static_cast<std::uint64_t>(window) + 1));
        genome.burst_len =
            1 + static_cast<SimTime>(
                    rng.next_below(static_cast<std::uint64_t>(window)));
        genome.burst_period =
            rng.chance(0.5)
                ? 0
                : genome.burst_len +
                      static_cast<SimTime>(rng.next_below(
                          static_cast<std::uint64_t>(window) + 1));
      }
      break;
  }
  return genome;
}

std::optional<Genome> Mutator::mutate(const Genome& parent, Rng& rng) const {
  const std::string parent_line = parent.to_line();
  for (std::size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    Genome candidate = mutate_once(parent, rng);
    if (candidate.graph.vertex_count() > options_.max_vertices) continue;
    if (candidate.timeline.size() > options_.max_timeline) continue;
    if (candidate.horizon < options_.min_horizon ||
        candidate.horizon > options_.max_horizon) {
      continue;
    }
    if (candidate.to_line() == parent_line) continue;
    if (!candidate.valid()) continue;
    return candidate;
  }
  return std::nullopt;
}

}  // namespace bftcup::explore

#include "explore/coverage.hpp"

namespace bftcup::explore {
namespace {

/// 0 for 0, otherwise 1 + floor(log2(x)): collapses counts that differ by
/// less than 2x into the same feature value.
std::uint32_t log_bucket(std::uint64_t x) {
  std::uint32_t bucket = 0;
  while (x != 0) {
    ++bucket;
    x >>= 1;
  }
  return bucket;
}

}  // namespace

std::string coverage_signature(const cup::RunReport& report) {
  std::string sig = report.verdict();
  sig += "|t" + std::to_string(log_bucket(static_cast<std::uint64_t>(
                    report.completion_time.value_or(-1) + 1)));
  sig += "|d" + std::to_string(report.decisions.size());

  // Membership (sink/core) size range across correct processes; processes
  // that never reported membership contribute the 0 bucket.
  std::size_t min_members = ~std::size_t{0};
  std::size_t max_members = 0;
  for (ProcessId id : report.correct) {
    const auto it = report.memberships.find(id);
    const std::size_t size =
        it == report.memberships.end() ? 0 : it->second.size();
    min_members = std::min(min_members, size);
    max_members = std::max(max_members, size);
  }
  if (report.correct.empty()) min_members = 0;
  sig += "|m" + std::to_string(min_members) + "." + std::to_string(max_members);

  sig += "|h";
  for (std::uint64_t count : report.sent_by_type) {
    sig += std::to_string(log_bucket(count)) + ".";
  }
  sig += "|x" + std::to_string(log_bucket(report.messages_dropped));
  // Hostile-wire activity. Appended only when the wire actually touched the
  // run so every pre-wire (and wire-off) signature stays byte-identical.
  if (report.frames_mutated > 0 || report.frames_rejected > 0 ||
      report.frames_lost > 0) {
    sig += "|w" + std::to_string(log_bucket(report.frames_mutated)) + "." +
           std::to_string(log_bucket(report.frames_rejected)) + "." +
           std::to_string(log_bucket(report.frames_lost));
  }
  sig += "|e" + std::to_string(log_bucket(report.evaluations));
  sig += "|s" + std::to_string(log_bucket(report.signatures_verified +
                                          report.signatures_cached));
  return sig;
}

}  // namespace bftcup::explore

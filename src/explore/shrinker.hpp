// Delta-debugging counterexamples down to minimal repros.
//
// A raw finding is whatever tangle of mutations first tripped the oracle;
// the shrinker greedily applies single-step *deletions* — drop a timeline
// gene, remove a fake-PD member or a whole fake-PD entry, remove a graph
// edge, remove a vertex (with its references), un-mark a faulty process —
// keeping a candidate only if it still validates and still replays to the
// same *Classification*: FindingKind AND requirements_satisfied. Preserving
// the latter stops the classic ddmin failure of sliding into a different
// root cause (an agreement break under satisfied requirements — a real
// protocol attack — must not "minimize" into a disconnected split-brain,
// which violates agreement for the trivial reason that the requirements no
// longer hold). It terminates at a fixpoint: a genome none of whose
// single-step reductions preserves the finding (1-minimality, the classic
// ddmin guarantee). Every replay runs through the shrinker's recycled
// cup::RunContext — ddmin probes hundreds of near-identical genomes, the
// run engine's best case — and stays deterministic and observationally
// identical to a fresh run_scenario call; shrinking is single-threaded by
// design.
#pragma once

#include "cup/run_context.hpp"
#include "explore/genome.hpp"
#include "explore/oracle.hpp"

namespace bftcup::explore {

struct ShrinkOptions {
  /// Replay budget; shrinking stops (fixpoint unverified) when exhausted.
  std::size_t max_runs = 600;
};

struct ShrinkOutcome {
  Genome genome;          ///< the minimized counterexample
  std::size_t runs = 0;   ///< replays spent
  bool fixpoint = false;  ///< true iff 1-minimality was verified in budget
};

class Shrinker {
 public:
  explicit Shrinker(ShrinkOptions options = {}, OracleOptions oracle = {})
      : options_(options), oracle_(oracle) {}

  /// Minimizes `start` (which must replay to `target`) under the reduction
  /// set below. Deterministic.
  [[nodiscard]] ShrinkOutcome shrink(const Genome& start,
                                     const Classification& target) const;

  /// Every single-step reduction of `genome`, in the fixed order the
  /// greedy loop probes them (timeline genes, fake-PD members, fake-PD
  /// entries, faulty marks, edges, vertices). Public so the fixpoint test
  /// can re-check 1-minimality independently. Candidates are NOT validated.
  [[nodiscard]] static std::vector<Genome> reductions(const Genome& genome);

  /// True iff `genome` validates and replays to exactly `target`.
  [[nodiscard]] bool reproduces(const Genome& genome,
                                const Classification& target) const;

 private:
  ShrinkOptions options_;
  OracleOptions oracle_;
  /// Replay engine, recycled across the ddmin probes. Mutable: warming the
  /// pool is not an observable state change (replay results are identical
  /// to fresh runs). Makes the shrinker non-copyable, like the context.
  mutable cup::RunContext context_;
};

}  // namespace bftcup::explore

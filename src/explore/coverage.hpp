// Coverage signatures: which behaviors a run exercised, coarsened.
//
// The explorer keeps a mutant iff its run lands in a coverage class no
// corpus member has produced yet. The signature coarsens RunReport into
// features that distinguish *behaviors* rather than runs: the verdict, the
// log-bucketed completion time, how many processes decided, the range of
// membership (sink/core) sizes the correct processes settled on, the
// log-bucketed per-message-type traffic histogram (which doubles as a
// protocol-phase fingerprint — view changes, RRB forwards, and re-polls
// each light up their own bucket), drops, and the membership-engine cache
// counters. Exact counts would make every run "new"; raw verdicts alone
// would collapse the search space to four points.
#pragma once

#include <set>
#include <string>

#include "cup/runner.hpp"

namespace bftcup::explore {

/// Canonical signature string for one run. Byte-equal iff the runs fall in
/// the same coverage class.
[[nodiscard]] std::string coverage_signature(const cup::RunReport& report);

/// The set of coverage classes seen so far.
class CoverageMap {
 public:
  /// Records the signature; true iff it was new coverage.
  bool add(const std::string& signature) {
    return seen_.insert(signature).second;
  }
  [[nodiscard]] bool contains(const std::string& signature) const {
    return seen_.contains(signature);
  }
  [[nodiscard]] std::size_t size() const { return seen_.size(); }

 private:
  std::set<std::string> seen_;
};

}  // namespace bftcup::explore

// Validity-preserving genome mutation.
//
// Every mutation the explorer feeds back into the corpus must be a scenario
// ScenarioBuilder::build() accepts — a fuzzer that drowns in its own
// malformed inputs measures nothing. The mutator perturbs one dimension at
// a time (topology, fault set, Byzantine behavior, fake-PD target sets,
// fault timeline, synchrony knobs, seed) and rejection-samples: a candidate
// that fails validation, exceeds the structural bounds, or equals its
// parent is discarded and another operator is drawn, up to
// `max_attempts` times. The operator mix is deliberately biased toward the
// adversary-controlled dimensions (fake PDs, timeline) — that is where the
// paper's interesting counterexamples live.
#pragma once

#include "common/random.hpp"
#include "explore/genome.hpp"

namespace bftcup::explore {

struct MutatorOptions {
  std::size_t max_vertices = 12;   ///< keeps omniscient checkers affordable
  std::size_t max_timeline = 8;
  std::size_t max_attempts = 32;   ///< rejection-sampling budget per mutate()
  SimTime min_horizon = 50'000;
  SimTime max_horizon = 2'000'000;
  SimTime max_gst = 100'000;
  SimTime max_delta = 100;
  /// Let the mutator touch the hostile-wire genes (frame mutation rate and
  /// masks, loss rate/jitter, burst windows). Off restricts the search to
  /// the reliable-channel space — the pre-wire operator mix, byte-for-byte.
  bool wire_ops = true;
};

class Mutator {
 public:
  explicit Mutator(MutatorOptions options = {}) : options_(options) {}

  /// One valid mutant of `parent`, or nullopt if the attempt budget ran out
  /// (e.g. the parent sits in a corner of the space every operator leaves).
  /// Deterministic given the rng state.
  [[nodiscard]] std::optional<Genome> mutate(const Genome& parent,
                                             Rng& rng) const;

  [[nodiscard]] const MutatorOptions& options() const { return options_; }

 private:
  /// One unvalidated candidate (may equal the parent; may be invalid).
  [[nodiscard]] Genome mutate_once(const Genome& parent, Rng& rng) const;

  MutatorOptions options_;
};

}  // namespace bftcup::explore

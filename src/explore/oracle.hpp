// The explorer's oracle: which runs count as findings.
//
// A finding is a run that violates a property the paper proves (agreement,
// validity, termination-under-solvability) or that disagrees with the
// paper's solvability predicate in the other direction (solved although the
// omniscient requirement check failed — a witness that the conditions are
// sufficient but not necessary). Safety verdicts are exact; the liveness
// verdict is necessarily heuristic (a horizon is not forever), so it only
// fires when the scenario gave the protocol a fair chance: requirements
// satisfied, every crash recovered, all disruption windows and GST well
// clear of the horizon. Every finding is a deterministic (genome, seed)
// artifact, so a human can replay and audit the classification.
#pragma once

#include <optional>

#include "explore/genome.hpp"

namespace bftcup::explore {

enum class FindingKind : std::uint8_t {
  kAgreement,   ///< two correct processes decided differently
  kValidity,    ///< a correct process decided a never-proposed value
  kLiveness,    ///< solvable per the predicate, fair run, yet no termination
  kWitness,     ///< solved although the requirement check failed
  /// A safety break attributable to the hostile wire: the genome's wire
  /// genes are active, safety broke, and the same genome with the wire
  /// layer stripped replays clean at the same seed. For a sound protocol
  /// this must never fire — mutated frames may cost liveness, never
  /// safety — so any non-kNaive wire-safety finding is a decode-path or
  /// verification hole.
  kWireSafety,
};

[[nodiscard]] const char* to_string(FindingKind kind);

struct OracleOptions {
  /// Report safety violations of the deliberately unsound kNaive mode.
  /// They are known witnesses (Theorem 7), still worth minimizing.
  bool include_naive = true;
  /// Report kLiveness findings at all.
  bool include_liveness = true;
  /// Report kWitness findings at all.
  bool include_witness = true;
  /// Ticks of undisturbed post-GST/post-disruption time a run must have had
  /// before NO-TERMINATION counts as a liveness finding.
  SimTime liveness_slack = 150'000;
  /// On a safety break with wire genes active, replay the genome with the
  /// wire stripped (same seed). A clean baseline pins the blame on the
  /// hostile wire (kWireSafety); a dirty one falls through to the ordinary
  /// kAgreement/kValidity classification. Costs one extra run, only on
  /// wire-active safety violations.
  bool attribute_wire = true;
};

/// Omniscient solvability: Theorem 1 (kAuth/kNaive) or the Section V
/// requirements (kCupft) on G_safe = graph[correct], with the genome's
/// static faulty set. Timed crashes are *not* folded in — the predicate
/// speaks about the static fault configuration, which is exactly why
/// disagreements with dynamic-fault runs are interesting.
[[nodiscard]] bool requirements_satisfied(const Genome& genome);

struct Classification {
  FindingKind kind;
  bool requirements_satisfied;

  friend bool operator==(const Classification&,
                         const Classification&) = default;
};

/// Classifies one run; nullopt when the behavior is unremarkable.
[[nodiscard]] std::optional<Classification> classify(
    const Genome& genome, const cup::RunReport& report,
    const OracleOptions& options = {});

}  // namespace bftcup::explore

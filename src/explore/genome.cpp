#include "explore/genome.hpp"

#include <charconv>
#include <utility>

namespace bftcup::explore {
namespace {

const char* mode_str(cup::Mode mode) {
  switch (mode) {
    case cup::Mode::kAuth: return "auth";
    case cup::Mode::kCupft: return "cupft";
    case cup::Mode::kNaive: return "naive";
  }
  return "auth";
}

std::optional<cup::Mode> parse_mode(const std::string& s) {
  if (s == "auth") return cup::Mode::kAuth;
  if (s == "cupft") return cup::Mode::kCupft;
  if (s == "naive") return cup::Mode::kNaive;
  return std::nullopt;
}

const char* byz_str(cup::ByzBehavior byz) {
  switch (byz) {
    case cup::ByzBehavior::kSilent: return "silent";
    case cup::ByzBehavior::kFakePd: return "fakepd";
    case cup::ByzBehavior::kEquivocate: return "equiv";
    case cup::ByzBehavior::kWrongValue: return "wrongval";
  }
  return "silent";
}

std::optional<cup::ByzBehavior> parse_byz(const std::string& s) {
  if (s == "silent") return cup::ByzBehavior::kSilent;
  if (s == "fakepd") return cup::ByzBehavior::kFakePd;
  if (s == "equiv") return cup::ByzBehavior::kEquivocate;
  if (s == "wrongval") return cup::ByzBehavior::kWrongValue;
  return std::nullopt;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  for (;;) {
    const auto end = text.find(sep, start);
    out.push_back(text.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  const auto [next, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || next != s.data() + s.size()) return std::nullopt;
  return v;
}

void append_ids(std::string& out, const IdSet& ids) {
  bool first = true;
  for (ProcessId id : ids) {
    if (!first) out += '.';
    out += std::to_string(id.raw());
    first = false;
  }
}

std::optional<IdSet> parse_ids(const std::string& s) {
  IdSet out;
  if (s.empty()) return out;
  for (const std::string& part : split(s, '.')) {
    const auto raw = parse_u64(part);
    if (!raw) return std::nullopt;
    out.insert(ProcessId(*raw));
  }
  return out;
}

void append_gene(std::string& out, const TimelineGene& gene) {
  switch (gene.kind) {
    case TimelineGene::Kind::kCrash:
      out += "crash:" + std::to_string(gene.subject.raw()) + "@" +
             std::to_string(gene.at);
      return;
    case TimelineGene::Kind::kRecover:
      out += "rec:" + std::to_string(gene.subject.raw()) + "@" +
             std::to_string(gene.at);
      return;
    case TimelineGene::Kind::kJoin:
      out += "join:" + std::to_string(gene.subject.raw()) + "@" +
             std::to_string(gene.at);
      return;
    case TimelineGene::Kind::kDrop:
      out += "drop:" + std::to_string(gene.subject.raw()) + ">" +
             std::to_string(gene.peer.raw()) + "@" + std::to_string(gene.at) +
             "-" + std::to_string(gene.until);
      return;
    case TimelineGene::Kind::kPartition:
      out += "part:";
      append_ids(out, gene.group_a);
      out += '/';
      append_ids(out, gene.group_b);
      out += "@" + std::to_string(gene.at) + "-" + std::to_string(gene.until);
      return;
  }
}

std::optional<TimelineGene> parse_gene(const std::string& s) {
  const auto colon = s.find(':');
  const auto at_pos = s.rfind('@');
  if (colon == std::string::npos || at_pos == std::string::npos ||
      at_pos < colon) {
    return std::nullopt;
  }
  const std::string kind = s.substr(0, colon);
  const std::string body = s.substr(colon + 1, at_pos - colon - 1);
  const std::string when = s.substr(at_pos + 1);

  TimelineGene gene;
  const bool windowed = kind == "drop" || kind == "part";
  if (windowed) {
    const auto dash = when.find('-');
    if (dash == std::string::npos) return std::nullopt;
    const auto at = parse_u64(when.substr(0, dash));
    const auto until = parse_u64(when.substr(dash + 1));
    if (!at || !until) return std::nullopt;
    gene.at = static_cast<SimTime>(*at);
    gene.until = static_cast<SimTime>(*until);
  } else {
    const auto at = parse_u64(when);
    if (!at) return std::nullopt;
    gene.at = static_cast<SimTime>(*at);
  }

  if (kind == "crash" || kind == "rec" || kind == "join") {
    const auto subject = parse_u64(body);
    if (!subject) return std::nullopt;
    gene.kind = kind == "crash" ? TimelineGene::Kind::kCrash
                : kind == "rec" ? TimelineGene::Kind::kRecover
                                : TimelineGene::Kind::kJoin;
    gene.subject = ProcessId(*subject);
    return gene;
  }
  if (kind == "drop") {
    const auto arrow = body.find('>');
    if (arrow == std::string::npos) return std::nullopt;
    const auto from = parse_u64(body.substr(0, arrow));
    const auto to = parse_u64(body.substr(arrow + 1));
    if (!from || !to) return std::nullopt;
    gene.kind = TimelineGene::Kind::kDrop;
    gene.subject = ProcessId(*from);
    gene.peer = ProcessId(*to);
    return gene;
  }
  if (kind == "part") {
    const auto slash = body.find('/');
    if (slash == std::string::npos) return std::nullopt;
    const auto a = parse_ids(body.substr(0, slash));
    const auto b = parse_ids(body.substr(slash + 1));
    if (!a || !b) return std::nullopt;
    gene.kind = TimelineGene::Kind::kPartition;
    gene.group_a = *a;
    gene.group_b = *b;
    return gene;
  }
  return std::nullopt;
}

}  // namespace

cup::ScenarioBuilder Genome::to_builder() const {
  cup::ScenarioBuilder builder(graph);
  builder.f(f)
      .mode(mode)
      .byz(byz)
      .faulty(faulty)
      .gst(gst)
      .delta(delta)
      .horizon(horizon)
      .seed(seed);
  if (closure_guard) builder.closure_guard();
  if (wire_rate_pm > 0) {
    builder.wire_mutation(static_cast<double>(wire_rate_pm) / 1000.0,
                          wire_kinds, wire_types);
  }
  if (loss_pm > 0 || loss_jitter > 0) {
    builder.loss(static_cast<double>(loss_pm) / 1000.0, loss_jitter);
  }
  if (burst_len > 0) {
    builder.loss_burst(burst_start, burst_len, burst_period);
  }
  for (const auto& [owner, advertised] : fake_pds) {
    builder.fake_pd(owner, advertised);
  }
  for (const TimelineGene& gene : timeline) {
    switch (gene.kind) {
      case TimelineGene::Kind::kCrash:
        builder.crash_at(gene.subject, gene.at);
        break;
      case TimelineGene::Kind::kRecover:
        builder.recover_at(gene.subject, gene.at);
        break;
      case TimelineGene::Kind::kJoin:
        builder.join_at(gene.subject, gene.at);
        break;
      case TimelineGene::Kind::kDrop:
        builder.drop_link(gene.subject, gene.peer, gene.at, gene.until);
        break;
      case TimelineGene::Kind::kPartition:
        builder.partition(gene.group_a, gene.group_b, gene.at, gene.until);
        break;
    }
  }
  return builder;
}

bool Genome::valid() const {
  try {
    (void)to_builder().build();
    return true;
  } catch (const cup::ScenarioError&) {
    return false;
  }
}

std::string Genome::to_line() const {
  std::string out = "v=";
  append_ids(out, graph.vertices());
  out += "|e=";
  bool first = true;
  for (const auto& [from, to] : edges_of(graph)) {
    if (!first) out += ';';
    out += std::to_string(from.raw()) + ">" + std::to_string(to.raw());
    first = false;
  }
  out += "|f=" + std::to_string(f);
  out += std::string("|mode=") + mode_str(mode);
  out += std::string("|byz=") + byz_str(byz);
  out += "|faulty=";
  append_ids(out, faulty);
  out += "|fpd=";
  first = true;
  for (const auto& [owner, advertised] : fake_pds) {
    if (!first) out += ';';
    out += std::to_string(owner.raw()) + ":";
    append_ids(out, advertised);
    first = false;
  }
  out += "|tl=";
  first = true;
  for (const TimelineGene& gene : timeline) {
    if (!first) out += ';';
    append_gene(out, gene);
    first = false;
  }
  out += "|gst=" + std::to_string(gst);
  out += "|delta=" + std::to_string(delta);
  out += "|hz=" + std::to_string(horizon);
  out += "|seed=" + std::to_string(seed);
  out += std::string("|cg=") + (closure_guard ? "1" : "0");
  // Hostile-wire keys are emitted only when they carry non-default content:
  // a wire-free genome's line is byte-identical to its pre-wire form, which
  // keeps the pinned corpus and the sha-derived finding names stable. Masks
  // are inert while the rate is zero, so they are (deliberately) not
  // serialized in that case — semantic equality, not field equality.
  if (wire_rate_pm > 0) {
    out += "|wm=" + std::to_string(wire_rate_pm) + ":" +
           std::to_string(wire_kinds) + ":" + std::to_string(wire_types);
  }
  if (loss_pm > 0 || loss_jitter > 0) {
    out += "|loss=" + std::to_string(loss_pm) + ":" +
           std::to_string(loss_jitter);
  }
  if (burst_len > 0) {
    out += "|burst=" + std::to_string(burst_start) + ":" +
           std::to_string(burst_len) + ":" + std::to_string(burst_period);
  }
  return out;
}

std::optional<Genome> Genome::parse_line(const std::string& line) {
  Genome genome;
  bool saw_vertices = false;
  for (const std::string& field : split(line, '|')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "v") {
      const auto ids = parse_ids(value);
      if (!ids) return std::nullopt;
      genome.graph = graph::Digraph(*ids);
      saw_vertices = true;
    } else if (key == "e") {
      if (!saw_vertices) return std::nullopt;
      if (value.empty()) continue;
      for (const std::string& edge : split(value, ';')) {
        const auto arrow = edge.find('>');
        if (arrow == std::string::npos) return std::nullopt;
        const auto from = parse_u64(edge.substr(0, arrow));
        const auto to = parse_u64(edge.substr(arrow + 1));
        if (!from || !to) return std::nullopt;
        genome.graph.add_edge(ProcessId(*from), ProcessId(*to));
      }
    } else if (key == "f") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      genome.f = static_cast<std::size_t>(*v);
    } else if (key == "mode") {
      const auto mode = parse_mode(value);
      if (!mode) return std::nullopt;
      genome.mode = *mode;
    } else if (key == "byz") {
      const auto byz = parse_byz(value);
      if (!byz) return std::nullopt;
      genome.byz = *byz;
    } else if (key == "faulty") {
      const auto ids = parse_ids(value);
      if (!ids) return std::nullopt;
      genome.faulty = *ids;
    } else if (key == "fpd") {
      if (value.empty()) continue;
      for (const std::string& entry : split(value, ';')) {
        const auto colon = entry.find(':');
        if (colon == std::string::npos) return std::nullopt;
        const auto owner = parse_u64(entry.substr(0, colon));
        const auto members = parse_ids(entry.substr(colon + 1));
        if (!owner || !members) return std::nullopt;
        genome.fake_pds[ProcessId(*owner)] = *members;
      }
    } else if (key == "tl") {
      if (value.empty()) continue;
      for (const std::string& entry : split(value, ';')) {
        const auto gene = parse_gene(entry);
        if (!gene) return std::nullopt;
        genome.timeline.push_back(*gene);
      }
    } else if (key == "gst") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      genome.gst = static_cast<SimTime>(*v);
    } else if (key == "delta") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      genome.delta = static_cast<SimTime>(*v);
    } else if (key == "hz") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      genome.horizon = static_cast<SimTime>(*v);
    } else if (key == "seed") {
      const auto v = parse_u64(value);
      if (!v) return std::nullopt;
      genome.seed = *v;
    } else if (key == "cg") {
      if (value != "0" && value != "1") return std::nullopt;
      genome.closure_guard = value == "1";
    } else if (key == "wm") {
      const auto parts = split(value, ':');
      if (parts.size() != 3) return std::nullopt;
      const auto rate = parse_u64(parts[0]);
      const auto kinds = parse_u64(parts[1]);
      const auto types = parse_u64(parts[2]);
      if (!rate || !kinds || !types) return std::nullopt;
      genome.wire_rate_pm = static_cast<std::uint32_t>(*rate);
      genome.wire_kinds = static_cast<std::uint32_t>(*kinds);
      genome.wire_types = static_cast<std::uint32_t>(*types);
    } else if (key == "loss") {
      const auto parts = split(value, ':');
      if (parts.size() != 2) return std::nullopt;
      const auto pm = parse_u64(parts[0]);
      const auto jitter = parse_u64(parts[1]);
      if (!pm || !jitter) return std::nullopt;
      genome.loss_pm = static_cast<std::uint32_t>(*pm);
      genome.loss_jitter = static_cast<SimTime>(*jitter);
    } else if (key == "burst") {
      const auto parts = split(value, ':');
      if (parts.size() != 3) return std::nullopt;
      const auto start = parse_u64(parts[0]);
      const auto len = parse_u64(parts[1]);
      const auto period = parse_u64(parts[2]);
      if (!start || !len || !period) return std::nullopt;
      genome.burst_start = static_cast<SimTime>(*start);
      genome.burst_len = static_cast<SimTime>(*len);
      genome.burst_period = static_cast<SimTime>(*period);
    } else {
      return std::nullopt;
    }
  }
  if (!saw_vertices) return std::nullopt;
  return genome;
}

graph::Digraph without_edge(const graph::Digraph& g, ProcessId from,
                            ProcessId to) {
  graph::Digraph out(g.vertices());
  for (const auto& [a, b] : edges_of(g)) {
    if (a == from && b == to) continue;
    out.add_edge(a, b);
  }
  return out;
}

Genome without_vertex(const Genome& g, ProcessId v) {
  Genome out = g;
  IdSet keep = g.graph.vertices();
  keep.erase(v);
  out.graph = g.graph.induced(keep);
  out.faulty.erase(v);
  out.fake_pds.erase(v);
  out.timeline.clear();
  for (TimelineGene gene : g.timeline) {
    switch (gene.kind) {
      case TimelineGene::Kind::kCrash:
      case TimelineGene::Kind::kRecover:
      case TimelineGene::Kind::kJoin:
        if (gene.subject == v) continue;
        break;
      case TimelineGene::Kind::kDrop:
        if (gene.subject == v || gene.peer == v) continue;
        break;
      case TimelineGene::Kind::kPartition:
        gene.group_a.erase(v);
        gene.group_b.erase(v);
        if (gene.group_a.empty() || gene.group_b.empty()) continue;
        break;
    }
    out.timeline.push_back(std::move(gene));
  }
  return out;
}

std::vector<std::pair<ProcessId, ProcessId>> edges_of(const graph::Digraph& g) {
  std::vector<std::pair<ProcessId, ProcessId>> out;
  out.reserve(g.edge_count());
  for (ProcessId from : g.vertices()) {
    for (ProcessId to : g.out_neighbors(from)) {
      out.emplace_back(from, to);
    }
  }
  return out;
}

}  // namespace bftcup::explore

// HMAC-SHA256 (RFC 2104).
#pragma once

#include "crypto/sha256.hpp"

namespace bftcup::crypto {

[[nodiscard]] Digest hmac_sha256(BytesView key, BytesView message);

}  // namespace bftcup::crypto

#include "crypto/verify_cache.hpp"

namespace bftcup::crypto {
namespace {

detail::SigMemoKey own_key(const detail::SigMemoKeyView& view) {
  detail::SigMemoKey key;
  key.seed = view.seed;
  key.signer = view.signer;
  key.payload.assign(view.payload.begin(), view.payload.end());
  if (view.sig != nullptr) key.sig = *view.sig;
  return key;
}

}  // namespace

bool VerifyCache::verify(KeyRegistry& registry, ProcessId signer,
                         BytesView message, const Signature& sig) {
  ++stats_.lookups;
  if (!memo_enabled_) return registry.verify(signer, message, sig);
  const detail::SigMemoKeyView view{registry.seed(), signer.raw(), message,
                                    &sig};
  if (auto it = memo_.find(view); it != memo_.end()) {
    ++stats_.hits;
    return it->second;
  }
  const bool ok = registry.verify(signer, message, sig);
  memo_.emplace(own_key(view), ok);
  return ok;
}

const Signature& SignCache::sign(KeyRegistry& registry, std::uint64_t seed,
                                 ProcessId signer, BytesView message) {
  ++stats_.lookups;
  const detail::SigMemoKeyView view{seed, signer.raw(), message, nullptr};
  if (auto it = memo_.find(view); it != memo_.end()) {
    ++stats_.hits;
    return it->second;
  }
  const auto [it, inserted] =
      memo_.emplace(own_key(view), registry.compute_signature(signer, message));
  (void)inserted;
  return it->second;
}

}  // namespace bftcup::crypto

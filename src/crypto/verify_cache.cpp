#include "crypto/verify_cache.hpp"

namespace bftcup::crypto {
namespace {

/// Collision-resistant key over the full verification input. Streaming —
/// no intermediate buffer is materialized.
Digest cache_key(ProcessId signer, BytesView message, const Signature& sig) {
  Sha256 hasher;
  static constexpr std::uint8_t kDomain[] = {'v', 'f', 'y'};
  hasher.update(BytesView(kDomain, sizeof(kDomain)));
  sha256_update_u64(hasher, signer.raw());
  sha256_update_u64(hasher, message.size());
  hasher.update(message);
  hasher.update(BytesView(sig.bytes.data(), sig.bytes.size()));
  return hasher.finalize();
}

}  // namespace

bool VerifyCache::verify(KeyRegistry& registry, ProcessId signer,
                         BytesView message, const Signature& sig) {
  ++stats_.lookups;
  if (!memo_enabled_) return registry.verify(signer, message, sig);
  const Digest key = cache_key(signer, message, sig);
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++stats_.hits;
    return it->second;
  }
  const bool ok = registry.verify(signer, message, sig);
  memo_.emplace(key, ok);
  return ok;
}

}  // namespace bftcup::crypto

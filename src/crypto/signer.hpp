// Per-process signing capability.
//
// A Signer binds one ProcessId to the shared KeyRegistry. Handing a process
// only its Signer (never the registry's sign_as) is what makes signatures
// unforgeable in the simulation: Byzantine code can sign anything *as
// itself*, but cannot produce another process's signature.
#pragma once

#include "crypto/keys.hpp"
#include "crypto/verify_cache.hpp"

namespace bftcup::crypto {

class Signer {
 public:
  Signer(ProcessId id, KeyRegistry* registry) : id_(id), registry_(registry) {}

  [[nodiscard]] ProcessId id() const { return id_; }

  [[nodiscard]] Signature sign(BytesView message) const {
    return registry_->sign_as(id_, message);
  }

 private:
  ProcessId id_;
  KeyRegistry* registry_;
};

class Verifier {
 public:
  /// Without a cache every verify() recomputes the MAC; with one, repeated
  /// (signer, payload, signature) triples — re-delivered SignedPds, quorum
  /// certificates, forgery floods — are served from the memo (accepts and
  /// rejects alike; see crypto/verify_cache.hpp).
  explicit Verifier(KeyRegistry* registry, VerifyCache* cache = nullptr)
      : registry_(registry), cache_(cache) {}

  [[nodiscard]] bool verify(ProcessId signer, BytesView message,
                            const Signature& sig) const {
    if (cache_ != nullptr) {
      return cache_->verify(*registry_, signer, message, sig);
    }
    return registry_->verify(signer, message, sig);
  }

 private:
  KeyRegistry* registry_;
  VerifyCache* cache_;
};

}  // namespace bftcup::crypto

// Per-process signing capability.
//
// A Signer binds one ProcessId to the shared KeyRegistry. Handing a process
// only its Signer (never the registry's sign_as) is what makes signatures
// unforgeable in the simulation: Byzantine code can sign anything *as
// itself*, but cannot produce another process's signature.
#pragma once

#include "crypto/keys.hpp"

namespace bftcup::crypto {

class Signer {
 public:
  Signer(ProcessId id, KeyRegistry* registry) : id_(id), registry_(registry) {}

  [[nodiscard]] ProcessId id() const { return id_; }

  [[nodiscard]] Signature sign(BytesView message) const {
    return registry_->sign_as(id_, message);
  }

 private:
  ProcessId id_;
  KeyRegistry* registry_;
};

class Verifier {
 public:
  explicit Verifier(KeyRegistry* registry) : registry_(registry) {}

  [[nodiscard]] bool verify(ProcessId signer, BytesView message,
                            const Signature& sig) const {
    return registry_->verify(signer, message, sig);
  }

 private:
  KeyRegistry* registry_;
};

}  // namespace bftcup::crypto

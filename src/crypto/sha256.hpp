// SHA-256 (FIPS 180-4), implemented from scratch for the offline build.
//
// Used as the compression primitive for HMAC-based simulated signatures and
// for content digests in the PBFT core.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace bftcup::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  /// Finalizes and returns the digest. The object must not be reused after.
  [[nodiscard]] Digest finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

[[nodiscard]] Digest sha256(BytesView data);

/// Streams a little-endian u64 into a running hash — the canonical integer
/// encoding for content digests (report digests, key derivation).
void sha256_update_u64(Sha256& hasher, std::uint64_t v);

/// Digest as a byte vector (convenient for codec/signature plumbing).
[[nodiscard]] Bytes digest_bytes(const Digest& d);

}  // namespace bftcup::crypto

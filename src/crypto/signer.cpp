#include "crypto/signer.hpp"

// Signer/Verifier are header-only; this TU exists so the build exercises the
// header's self-containedness.

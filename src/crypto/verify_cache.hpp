// Signature-verification memo.
//
// The simulation re-delivers the same signed artifacts many times: every
// SETPDS reply repeats previously seen SignedPds (including Byzantine
// forgeries, which honest nodes must reject on every delivery), and every
// PBFT-DECIDE certificate re-verifies the same quorum of COMMIT shares at
// each recipient. Verification is deterministic — a pure function of
// (signer, payload, signature) under the simulated PKI — so both accepts
// and *rejects* are safely memoizable. A hit costs one SHA-256 pass over
// the key material instead of the full HMAC-SHA256 recompute (two HMAC
// passes plus the redundancy digest), and no allocation.
//
// One cache per Simulator: single-threaded by construction, and scoping it
// to the run keeps replay bit-identical (results are value-equal either
// way; see README "Membership engine caching").
#pragma once

#include <cstring>
#include <unordered_map>

#include "crypto/keys.hpp"

namespace bftcup::crypto {

class VerifyCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;  ///< verify() calls routed through the cache
    std::uint64_t hits = 0;     ///< served from the memo (no HMAC recompute)
  };

  /// `memo_enabled` = false keeps the counters (so reports can still show
  /// how many verifications a run performs) but never serves from the memo.
  explicit VerifyCache(bool memo_enabled = true)
      : memo_enabled_(memo_enabled) {}

  /// Memoized KeyRegistry::verify.
  [[nodiscard]] bool verify(KeyRegistry& registry, ProcessId signer,
                            BytesView message, const Signature& sig);

  [[nodiscard]] bool memo_enabled() const { return memo_enabled_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct DigestHash {
    std::size_t operator()(const Digest& d) const {
      // The key is itself a SHA-256 digest; its prefix is already uniform.
      std::size_t h = 0;
      std::memcpy(&h, d.data(), sizeof(h));
      return h;
    }
  };

  bool memo_enabled_;
  std::unordered_map<Digest, bool, DigestHash> memo_;
  Stats stats_;
};

}  // namespace bftcup::crypto

// Signature memos: verification outcomes and signature values.
//
// The simulation re-creates the same signed artifacts many times: every
// SETPDS reply repeats previously seen SignedPds (including Byzantine
// forgeries, which honest nodes must reject on every delivery), every
// PBFT-DECIDE certificate re-verifies the same quorum of COMMIT shares at
// each recipient, and a recycled run context replays whole runs whose
// artifacts are byte-identical. Signing and verification are pure
// functions of (key seed, signer, payload[, signature]) under the
// simulated PKI, so both are memoizable — accepts and *rejects* alike.
//
// Keys are the raw tuples themselves, bucketed by a fast non-cryptographic
// hash and compared byte-for-byte on lookup. This is deliberately NOT a
// digest-trusting design: a hash collision degrades to an equality check,
// never to a wrong answer, and a memo hit costs a ~100-byte mix + memcmp
// instead of the SHA-256 passes that used to dominate short pooled runs.
// Binding the key seed makes entries valid forever, so a recycled
// Simulator keeps both memos across reset() and replayed runs perform
// near-zero crypto. One instance per Simulator: single-threaded by
// construction.
#pragma once

#include <cstring>
#include <unordered_map>

#include "common/fnv.hpp"
#include "common/thread_annotations.hpp"
#include "crypto/keys.hpp"

namespace bftcup::crypto {

namespace detail {

/// FNV-1a (common/fnv.hpp) over the concatenated key fields. Bucketing
/// only — equality is always a full byte compare, so hash quality affects
/// speed, never soundness.
struct SigMemoHasher {
  std::size_t state = kFnvOffsetBasis;

  void mix(const void* data, std::size_t size) {
    state = fnv1a_mix(state, data, size);
  }
  void mix_u64(std::uint64_t v) { state = fnv1a_mix_u64(state, v); }
};

/// Owning memo key: every input the signing/verification verdict depends
/// on. `sig` is all-zero (and ignored) for the signing memo.
struct SigMemoKey {
  std::uint64_t seed = 0;
  std::uint64_t signer = 0;
  Bytes payload;
  Signature sig{};

  friend bool operator==(const SigMemoKey&, const SigMemoKey&) = default;
};

/// Borrowed view of a key for heterogeneous (allocation-free) lookup.
struct SigMemoKeyView {
  std::uint64_t seed = 0;
  std::uint64_t signer = 0;
  BytesView payload;
  const Signature* sig = nullptr;  ///< null for the signing memo
};

struct SigMemoHash {
  using is_transparent = void;

  std::size_t operator()(const SigMemoKey& k) const {
    SigMemoHasher h;
    h.mix_u64(k.seed);
    h.mix_u64(k.signer);
    h.mix(k.payload.data(), k.payload.size());
    h.mix(k.sig.bytes.data(), k.sig.bytes.size());
    return h.state;
  }
  std::size_t operator()(const SigMemoKeyView& k) const {
    static const Signature kZeroSig{};
    SigMemoHasher h;
    h.mix_u64(k.seed);
    h.mix_u64(k.signer);
    h.mix(k.payload.data(), k.payload.size());
    const Signature& sig = k.sig != nullptr ? *k.sig : kZeroSig;
    h.mix(sig.bytes.data(), sig.bytes.size());
    return h.state;
  }
};

struct SigMemoEq {
  using is_transparent = void;

  bool operator()(const SigMemoKey& a, const SigMemoKey& b) const {
    return a == b;
  }
  bool operator()(const SigMemoKeyView& a, const SigMemoKey& b) const {
    if (a.seed != b.seed || a.signer != b.signer) return false;
    if (a.payload.size() != b.payload.size()) return false;
    if (std::memcmp(a.payload.data(), b.payload.data(), a.payload.size()) !=
        0) {
      return false;
    }
    static const Signature kZeroSig{};
    const Signature& sig = a.sig != nullptr ? *a.sig : kZeroSig;
    return sig == b.sig;
  }
  bool operator()(const SigMemoKey& a, const SigMemoKeyView& b) const {
    return operator()(b, a);
  }
};

}  // namespace detail

class BFTCUP_THREAD_CONFINED VerifyCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;  ///< verify() calls routed through the cache
    std::uint64_t hits = 0;     ///< served from the memo (no MAC recompute)
  };

  /// `memo_enabled` = false keeps the counters (so reports can still show
  /// how many verifications a run performs) but never serves from the memo.
  explicit VerifyCache(bool memo_enabled = true)
      : memo_enabled_(memo_enabled) {}

  /// Memoized KeyRegistry::verify.
  [[nodiscard]] bool verify(KeyRegistry& registry, ProcessId signer,
                            BytesView message, const Signature& sig);

  /// Per-run toggle for a recycled cache. Retained entries stay in place
  /// while disabled (they are never consulted) and become servable again
  /// when re-enabled — soundness comes from the seed-bound key, not from
  /// clearing.
  void set_memo_enabled(bool enabled) { memo_enabled_ = enabled; }

  /// Drops every entry but keeps the hash-table buckets. Called by the
  /// recycled engine when the memo outgrows its cap, never for soundness.
  void clear() { memo_.clear(); }

  [[nodiscard]] std::size_t entry_count() const { return memo_.size(); }
  [[nodiscard]] bool memo_enabled() const { return memo_enabled_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  bool memo_enabled_;
  std::unordered_map<detail::SigMemoKey, bool, detail::SigMemoHash,
                     detail::SigMemoEq>
      memo_;
  Stats stats_;
};

/// The signing-side memo: (key seed, signer, payload) -> Signature. The
/// protocols re-sign identical artifacts on every recycled replay (own
/// PDs, PBFT vote payloads); a hit replaces the HMAC-SHA256 computation
/// with a table lookup. Attached to a KeyRegistry by the run engine.
class BFTCUP_THREAD_CONFINED SignCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
  };

  /// Memoized KeyRegistry::sign_as. `seed` must be the registry's current
  /// key seed (the registry passes it in).
  [[nodiscard]] const Signature& sign(KeyRegistry& registry,
                                      std::uint64_t seed, ProcessId signer,
                                      BytesView message);

  void clear() { memo_.clear(); }
  [[nodiscard]] std::size_t entry_count() const { return memo_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::unordered_map<detail::SigMemoKey, Signature, detail::SigMemoHash,
                     detail::SigMemoEq>
      memo_;
  Stats stats_;
};

}  // namespace bftcup::crypto

#include "crypto/keys.hpp"

#include "crypto/hmac.hpp"
#include "crypto/keyring_cache.hpp"
#include "crypto/verify_cache.hpp"

namespace bftcup::crypto {

Bytes derive_process_secret(std::uint64_t key_seed, ProcessId id) {
  Bytes material;
  material.reserve(16);
  for (int i = 0; i < 8; ++i) {
    material.push_back(static_cast<std::uint8_t>(key_seed >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    material.push_back(static_cast<std::uint8_t>(id.raw() >> (8 * i)));
  }
  const Digest d = sha256(material);
  return Bytes(d.begin(), d.end());
}

KeyRegistry::KeyRegistry(std::uint64_t system_seed) : seed_(system_seed) {}

void KeyRegistry::reset(std::uint64_t system_seed) {
  if (seed_ != system_seed) secrets_.clear();  // clear() keeps the buckets
  seed_ = system_seed;
}

const Bytes& KeyRegistry::secret_for(ProcessId id) {
  if (keyring_ != nullptr) return keyring_->secret_for(seed_, id);
  auto it = secrets_.find(id);
  if (it == secrets_.end()) {
    it = secrets_.emplace(id, derive_process_secret(seed_, id)).first;
  }
  return it->second;
}

Signature KeyRegistry::sign_as(ProcessId id, BytesView message) {
  if (sign_cache_ != nullptr) {
    return sign_cache_->sign(*this, seed_, id, message);
  }
  return compute_signature(id, message);
}

Signature KeyRegistry::compute_signature(ProcessId id, BytesView message) {
  const Bytes& secret = secret_for(id);
  const Digest tag = hmac_sha256(secret, message);
  const Digest body = sha256(message);
  Signature sig;
  std::copy(tag.begin(), tag.end(), sig.bytes.begin());
  std::copy(body.begin(), body.end(), sig.bytes.begin() + 32);
  return sig;
}

bool KeyRegistry::verify(ProcessId id, BytesView message,
                         const Signature& sig) {
  const Signature expected = sign_as(id, message);
  return constant_time_equal(
      BytesView(expected.bytes.data(), expected.bytes.size()),
      BytesView(sig.bytes.data(), sig.bytes.size()));
}

}  // namespace bftcup::crypto

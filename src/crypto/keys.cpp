#include "crypto/keys.hpp"

#include "crypto/hmac.hpp"

namespace bftcup::crypto {
namespace {

Bytes derive_secret(std::uint64_t seed, ProcessId id) {
  Bytes material;
  material.reserve(16);
  for (int i = 0; i < 8; ++i) {
    material.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    material.push_back(static_cast<std::uint8_t>(id.raw() >> (8 * i)));
  }
  const Digest d = sha256(material);
  return Bytes(d.begin(), d.end());
}

}  // namespace

KeyRegistry::KeyRegistry(std::uint64_t system_seed) : seed_(system_seed) {}

const Bytes& KeyRegistry::secret_for(ProcessId id) {
  auto it = secrets_.find(id);
  if (it == secrets_.end()) {
    it = secrets_.emplace(id, derive_secret(seed_, id)).first;
  }
  return it->second;
}

Signature KeyRegistry::sign_as(ProcessId id, BytesView message) {
  const Bytes& secret = secret_for(id);
  const Digest tag = hmac_sha256(secret, message);
  const Digest body = sha256(message);
  Signature sig;
  std::copy(tag.begin(), tag.end(), sig.bytes.begin());
  std::copy(body.begin(), body.end(), sig.bytes.begin() + 32);
  return sig;
}

bool KeyRegistry::verify(ProcessId id, BytesView message,
                         const Signature& sig) {
  const Signature expected = sign_as(id, message);
  return constant_time_equal(
      BytesView(expected.bytes.data(), expected.bytes.size()),
      BytesView(sig.bytes.data(), sig.bytes.size()));
}

}  // namespace bftcup::crypto

// Simulated PKI.
//
// The paper assumes an abstract digital-signature capability plus
// Sybil-resistant unique IDs (Section II-A), which presupposes some identity
// layer. We model that layer as a KeyRegistry: a trusted oracle that derives
// a per-process secret from a system seed. Processes receive only their own
// Signer (see signer.hpp); verification recomputes the MAC through the
// registry. The unforgeability the protocol relies on — a Byzantine process
// cannot fabricate a correct process's signed PD — is enforced structurally
// because no code path hands one process another's secret.
//
// DESIGN.md §4.4 records this substitution.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/sha256.hpp"

namespace bftcup::crypto {

/// 64-byte signature: HMAC-SHA256 tag (32B) + redundancy digest (32B).
/// The second half mimics realistic signature sizes and doubles as a cheap
/// corruption detector in tests.
struct Signature {
  std::array<std::uint8_t, 64> bytes{};

  friend bool operator==(const Signature&, const Signature&) = default;
};

class KeyringCache;  // crypto/keyring_cache.hpp
class SignCache;     // crypto/verify_cache.hpp

/// The secret-derivation function itself: SHA-256 over (key_seed, id).
/// Pure, so the cross-run KeyringCache can share outputs between runs.
[[nodiscard]] Bytes derive_process_secret(std::uint64_t key_seed, ProcessId id);

class KeyRegistry {
 public:
  explicit KeyRegistry(std::uint64_t system_seed);

  /// Re-seeds the registry for a recycled run. Locally derived secrets are
  /// dropped (they belong to the old seed); an attached KeyringCache keeps
  /// its entries — they are keyed by (seed, id) and stay valid forever.
  void reset(std::uint64_t system_seed);

  /// Routes secret derivation through a cross-run cache owned by the
  /// caller (RunContext). May be null; the cache must outlive the registry.
  void attach_keyring(KeyringCache* cache) { keyring_ = cache; }

  /// Routes sign_as through a signature memo (crypto/verify_cache.hpp).
  /// May be null; the cache must outlive the registry. Signatures are pure
  /// functions of (seed, signer, payload), so results are identical with
  /// the memo attached or not.
  void attach_sign_cache(SignCache* cache) { sign_cache_ = cache; }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Derives (and caches) the secret for `id`. Deterministic in the seed.
  [[nodiscard]] const Bytes& secret_for(ProcessId id);

  /// Verifies that `sig` is `id`'s signature over `message`.
  [[nodiscard]] bool verify(ProcessId id, BytesView message,
                            const Signature& sig);

  /// Computes `id`'s signature over `message` (through the sign memo when
  /// one is attached). Internal: reachable by processes only through their
  /// own Signer.
  [[nodiscard]] Signature sign_as(ProcessId id, BytesView message);

  /// The raw HMAC computation, bypassing any attached memo (the memo's
  /// fill path; also useful to tests).
  [[nodiscard]] Signature compute_signature(ProcessId id, BytesView message);

 private:
  std::uint64_t seed_;
  std::unordered_map<ProcessId, Bytes> secrets_;
  KeyringCache* keyring_ = nullptr;
  SignCache* sign_cache_ = nullptr;
};

}  // namespace bftcup::crypto

// Simulated PKI.
//
// The paper assumes an abstract digital-signature capability plus
// Sybil-resistant unique IDs (Section II-A), which presupposes some identity
// layer. We model that layer as a KeyRegistry: a trusted oracle that derives
// a per-process secret from a system seed. Processes receive only their own
// Signer (see signer.hpp); verification recomputes the MAC through the
// registry. The unforgeability the protocol relies on — a Byzantine process
// cannot fabricate a correct process's signed PD — is enforced structurally
// because no code path hands one process another's secret.
//
// DESIGN.md §4.4 records this substitution.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/sha256.hpp"

namespace bftcup::crypto {

/// 64-byte signature: HMAC-SHA256 tag (32B) + redundancy digest (32B).
/// The second half mimics realistic signature sizes and doubles as a cheap
/// corruption detector in tests.
struct Signature {
  std::array<std::uint8_t, 64> bytes{};

  friend bool operator==(const Signature&, const Signature&) = default;
};

class KeyRegistry {
 public:
  explicit KeyRegistry(std::uint64_t system_seed);

  /// Derives (and caches) the secret for `id`. Deterministic in the seed.
  [[nodiscard]] const Bytes& secret_for(ProcessId id);

  /// Verifies that `sig` is `id`'s signature over `message`.
  [[nodiscard]] bool verify(ProcessId id, BytesView message,
                            const Signature& sig);

  /// Computes `id`'s signature over `message`. Internal: reachable by
  /// processes only through their own Signer.
  [[nodiscard]] Signature sign_as(ProcessId id, BytesView message);

 private:
  std::uint64_t seed_;
  std::unordered_map<ProcessId, Bytes> secrets_;
};

}  // namespace bftcup::crypto

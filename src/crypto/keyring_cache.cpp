#include "crypto/keyring_cache.hpp"

#include "crypto/keys.hpp"

namespace bftcup::crypto {

const Bytes& KeyringCache::secret_for(std::uint64_t key_seed, ProcessId id) {
  const SeedId key{key_seed, id.raw()};
  auto it = secrets_.find(key);
  if (it == secrets_.end()) {
    it = secrets_.emplace(key, derive_process_secret(key_seed, id)).first;
  }
  return it->second;
}

}  // namespace bftcup::crypto

// Cross-run key-derivation cache for pooled simulations.
//
// A fresh Simulator derives every process secret with a SHA-256 over
// (registry seed, id) — negligible once, but a pure fixed cost when
// BatchRunner and the explorer execute millions of short runs over the
// same topology families and seed ranges. Derivation is a pure function of
// (key-seed, id), so a RunContext keeps one KeyringCache across all its
// runs and the registry it recycles consults it instead of re-deriving.
//
// References returned by secret_for stay valid for the cache's lifetime
// (unordered_map never invalidates references on rehash), which outlives
// every run of the owning context. Single-threaded, like the context.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/thread_annotations.hpp"

namespace bftcup::crypto {

class BFTCUP_THREAD_CONFINED KeyringCache {
 public:
  /// The secret for `id` under registry seed `key_seed`, derived on first
  /// use and shared by every subsequent run that asks again.
  [[nodiscard]] const Bytes& secret_for(std::uint64_t key_seed, ProcessId id);

  [[nodiscard]] std::size_t size() const { return secrets_.size(); }

 private:
  struct SeedId {
    std::uint64_t seed;
    std::uint64_t id;

    friend bool operator==(const SeedId&, const SeedId&) = default;
  };
  struct SeedIdHash {
    std::size_t operator()(const SeedId& k) const {
      // splitmix-style combine; both halves are well distributed already.
      std::uint64_t h = k.seed ^ (k.id * 0x9e3779b97f4a7c15ULL);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };

  std::unordered_map<SeedId, Bytes, SeedIdHash> secrets_;
};

}  // namespace bftcup::crypto

#include "crypto/hmac.hpp"

#include <array>

namespace bftcup::crypto {

Digest hmac_sha256(BytesView key, BytesView message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> key_block{};

  if (key.size() > kBlock) {
    const Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad.data(), ipad.size()));
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(BytesView(opad.data(), opad.size()));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}

}  // namespace bftcup::crypto

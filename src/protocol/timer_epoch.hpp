// Stale-timer suppression shared by Discovery and PbftInstance.
//
// Simulator timers cannot be cancelled, so components that restart their
// periodic chain (view changes, crash recovery) stamp each armed timer with
// an epoch in the kind's upper bits and ignore fires whose epoch no longer
// matches. Encode and decode must stay in lockstep — keep both here.
#pragma once

#include <cstdint>

namespace bftcup::protocol {

/// Epochs wrap below 2^23 so the encoded kind stays a positive int with the
/// low byte free for the component's base kind.
inline constexpr std::uint64_t kTimerEpochMod = 0x7fffff;

[[nodiscard]] inline int encode_timer_kind(int base_kind,
                                           std::uint64_t epoch) {
  return base_kind | static_cast<int>(epoch % kTimerEpochMod) << 8;
}

[[nodiscard]] inline bool timer_epoch_matches(int kind, std::uint64_t epoch) {
  return static_cast<std::uint64_t>(kind >> 8) == epoch % kTimerEpochMod;
}

}  // namespace bftcup::protocol

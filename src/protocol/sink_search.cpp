#include "protocol/sink_search.hpp"

#include <algorithm>
#include <bit>

#include "common/logging.hpp"
#include "protocol/eval_cache.hpp"

namespace bftcup::protocol {
namespace {

/// Appends every admissible split of `s1` as a candidate. Shared by the cold
/// and incremental paths; `scratch` (optional) routes the split computation
/// through the view's per-S1 memo.
void collect_candidates_for(const KnowledgeView& view, EvalScratch* scratch,
                            const IdSet& s1, std::vector<SinkCandidate>& out) {
  if (scratch != nullptr) {
    for (const AdmissibleSplit& split :
         admissible_thresholds_memo(view, s1, *scratch)) {
      out.push_back({s1, split.s2, split.g});
    }
    return;
  }
  for (AdmissibleSplit& split : admissible_thresholds(view, s1)) {
    out.push_back({s1, std::move(split.s2), split.g});
  }
}

/// Candidates the exhaustive strategy derives from one SCC: every non-empty
/// subset, masks ascending. One scratch S1 is reused across all 2^n - 1
/// masks (cleared, refilled in ascending id order) so the inner loop's only
/// allocation is its first capacity growth — the FlatSet-scratch half of
/// the run engine's near-zero-heap steady state. collect_candidates_for
/// copies S1 into whatever it emits, so reuse cannot leak.
void enumerate_exhaustive(const KnowledgeView& view, EvalScratch* scratch,
                          const IdSet& scc, std::vector<SinkCandidate>& out) {
  const auto& ids = scc.values();
  const std::size_t n = ids.size();
  IdSet s1;
  s1.reserve(n);
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    s1.clear();
    for (std::size_t b = 0; b < n; ++b) {
      // ids is sorted, so these inserts are ordered appends.
      if (mask & (std::uint64_t{1} << b)) s1.insert(ids[b]);
    }
    collect_candidates_for(view, scratch, s1, out);
  }
}

/// Candidates the structured strategy derives from one SCC: C itself, then
/// C \ D for every removal set D with |D| <= removal_cap.
void enumerate_structured(const KnowledgeView& view, EvalScratch* scratch,
                          const IdSet& scc, std::size_t removal_cap,
                          std::vector<SinkCandidate>& out) {
  const auto& ids = scc.values();
  const std::size_t n = ids.size();
  const std::size_t cap = std::min(removal_cap, n - 1);

  collect_candidates_for(view, scratch, scc, out);
  for (std::size_t d = 1; d <= cap; ++d) {
    std::vector<std::size_t> combo(d);
    for (std::size_t i = 0; i < d; ++i) combo[i] = i;
    bool more = true;
    while (more) {
      IdSet s1 = scc;
      for (std::size_t idx : combo) s1.erase(ids[idx]);
      collect_candidates_for(view, scratch, s1, out);

      // Advance to the next d-combination of {0..n-1}.
      more = false;
      for (std::size_t i = d; i-- > 0;) {
        if (combo[i] < n - d + i) {
          ++combo[i];
          for (std::size_t j = i + 1; j < d; ++j) combo[j] = combo[j - 1] + 1;
          more = true;
          break;
        }
      }
    }
  }
}

/// The incremental driver shared by both strategies. Iterates the current
/// SCC decomposition in order; an SCC whose member set is present in the
/// strategy's cache is clean (PDs are immutable and known() growth cannot
/// alter its candidates — README "Membership engine caching"), everything
/// else is dirty and re-enumerated through `enumerate`, with the per-S1
/// split memo absorbing subsets already costed in an earlier revision.
/// Output order is identical to a cold run: current SCC order, and within
/// an SCC the enumeration order `enumerate` defines.
/// SCCs of the knowledge graph restricted to processes with received PDs —
/// any strongly connected S1 (P2 needs κ >= 1) is a subset of one of these.
/// Shared by the cold path and churn-suspended incremental evaluations;
/// the snapshot the warm incremental path reads is built from the
/// identical construction, so enumeration order matches bit-for-bit.
std::vector<IdSet> received_sccs(const KnowledgeView& view) {
  const graph::Digraph k = view.knowledge_graph().induced(view.received());
  return graph::strongly_connected_components(k).members;
}

template <typename Enumerate>
std::vector<SinkCandidate> incremental_candidates(const KnowledgeView& view,
                                                  const std::string& cache_key,
                                                  Enumerate&& enumerate) {
  std::vector<SinkCandidate> out;
  EvalScratch& scratch = view.eval_scratch();

  // Churn-phase evaluation (see EvalScratch::memo_suspended): enumerate at
  // cold speed — no candidate cache, no prune, no split memo, and no
  // persistent per-view snapshot (a churning view's snapshot is rebuilt
  // every revision anyway, and keeping one graph resident per node evicts
  // the max-flow scratch from cache). Identical output, none of the
  // bookkeeping that cannot amortize.
  if (scratch.memo_suspended) {
    for (const IdSet& scc : received_sccs(view)) {
      enumerate(view, nullptr, scc, out);
    }
    return out;
  }

  const auto& snapshot = view.received_scc_snapshot();
  EvalScratch::StrategyCache& cache = scratch.strategies[cache_key];

  // Drop entries for SCCs that no longer exist (they merged into a bigger
  // component); their subsets stay warm in the split memo.
  if (cache.pruned_revision != view.revision()) {
    std::vector<const IdSet*> current;
    current.reserve(snapshot.sccs.members.size());
    for (const IdSet& scc : snapshot.sccs.members) current.push_back(&scc);
    const auto by_value = [](const IdSet* a, const IdSet* b) {
      return *a < *b;
    };
    std::sort(current.begin(), current.end(), by_value);
    std::erase_if(cache.by_scc, [&](const auto& entry) {
      return !std::binary_search(current.begin(), current.end(), &entry.first,
                                 by_value);
    });
    cache.pruned_revision = view.revision();
  }

  for (const IdSet& scc : snapshot.sccs.members) {
    const auto it = cache.by_scc.find(scc);
    if (it != cache.by_scc.end() && it->second.filled) {
      ++scratch.stats.scc_hits;
      out.insert(out.end(), it->second.candidates.begin(),
                 it->second.candidates.end());
      continue;
    }
    ++scratch.stats.scc_misses;
    // Two-touch admission (see EvalScratch::CachedCandidates): record the
    // key on first sight, store the candidate vector only once the same
    // member set survives to a second enumeration. Discovery-churn SCCs
    // are pruned before their second touch and never pay the copy.
    if (it == cache.by_scc.end()) {
      enumerate(view, &scratch, scc, out);  // straight into the output
      cache.by_scc.emplace(scc, EvalScratch::CachedCandidates{});
      continue;
    }
    std::vector<SinkCandidate> fresh;
    enumerate(view, &scratch, scc, fresh);
    out.insert(out.end(), fresh.begin(), fresh.end());
    it->second.filled = true;
    it->second.candidates = std::move(fresh);
  }
  return out;
}

bool skip_oversized(const IdSet& scc, std::size_t cap) {
  if (scc.size() <= cap) return false;
  LOG_WARN("sink_search") << "SCC of size " << scc.size()
                          << " exceeds exhaustive cap " << cap << "; skipping";
  return true;
}

std::string options_key(const char* name, const SearchOptions& options) {
  std::string key = name;
  key += "/cap=" + std::to_string(options.exhaustive_cap);
  key += "/rm=" + std::to_string(options.removal_cap);
  return key;
}

}  // namespace

SearchOptions SearchOptions::validated() const {
  SearchOptions out = *this;
  // A 64-bit mask enumerates at most 2^63 subsets; larger caps would shift
  // by >= 64 bits (UB). Clamping is safe: SCCs beyond 63 members could never
  // finish enumerating anyway.
  out.exhaustive_cap = std::min<std::size_t>(out.exhaustive_cap, 63);
  return out;
}

ExhaustiveSinkSearch::ExhaustiveSinkSearch(SearchOptions options)
    : options_(options.validated()),
      cache_key_(options_key("exhaustive", options_)) {}

StructuredSinkSearch::StructuredSinkSearch(SearchOptions options)
    : options_(options.validated()),
      cache_key_(options_key("structured", options_)) {}

std::vector<SinkCandidate> ExhaustiveSinkSearch::candidates(
    const KnowledgeView& view) const {
  const auto enumerate = [this](const KnowledgeView& v, EvalScratch* scratch,
                                const IdSet& scc,
                                std::vector<SinkCandidate>& out) {
    if (skip_oversized(scc, options_.exhaustive_cap)) return;
    enumerate_exhaustive(v, scratch, scc, out);
  };

  if (options_.incremental) {
    return incremental_candidates(view, cache_key_, enumerate);
  }
  std::vector<SinkCandidate> out;
  for (const IdSet& scc : received_sccs(view)) {
    enumerate(view, nullptr, scc, out);
  }
  return out;
}

std::vector<SinkCandidate> StructuredSinkSearch::candidates(
    const KnowledgeView& view) const {
  const auto enumerate = [this](const KnowledgeView& v, EvalScratch* scratch,
                                const IdSet& scc,
                                std::vector<SinkCandidate>& out) {
    enumerate_structured(v, scratch, scc, options_.removal_cap, out);
  };

  if (options_.incremental) {
    return incremental_candidates(view, cache_key_, enumerate);
  }
  std::vector<SinkCandidate> out;
  for (const IdSet& scc : received_sccs(view)) {
    enumerate(view, nullptr, scc, out);
  }
  return out;
}

std::unique_ptr<SinkSearch> make_default_search() {
  return std::make_unique<ExhaustiveSinkSearch>();
}

}  // namespace bftcup::protocol

#include "protocol/sink_search.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "graph/scc.hpp"

namespace bftcup::protocol {
namespace {

/// SCCs of the knowledge graph restricted to processes with received PDs —
/// any strongly connected S1 (P2 needs κ >= 1) is a subset of one of these.
std::vector<IdSet> received_sccs(const KnowledgeView& view) {
  const graph::Digraph k = view.knowledge_graph().induced(view.received());
  return graph::strongly_connected_components(k).members;
}

void collect_candidates_for(const KnowledgeView& view, const IdSet& s1,
                            std::vector<SinkCandidate>& out) {
  for (AdmissibleSplit& split : admissible_thresholds(view, s1)) {
    out.push_back({s1, std::move(split.s2), split.g});
  }
}

}  // namespace

std::vector<SinkCandidate> ExhaustiveSinkSearch::candidates(
    const KnowledgeView& view) const {
  std::vector<SinkCandidate> out;
  for (const IdSet& scc : received_sccs(view)) {
    if (scc.size() < 1) continue;
    if (scc.size() > options_.exhaustive_cap) {
      LOG_WARN("sink_search") << "SCC of size " << scc.size()
                              << " exceeds exhaustive cap "
                              << options_.exhaustive_cap << "; skipping";
      continue;
    }
    const auto& ids = scc.values();
    const std::size_t n = ids.size();
    for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
      IdSet s1;
      for (std::size_t b = 0; b < n; ++b) {
        if (mask & (std::uint64_t{1} << b)) s1.insert(ids[b]);
      }
      collect_candidates_for(view, s1, out);
    }
  }
  return out;
}

std::vector<SinkCandidate> StructuredSinkSearch::candidates(
    const KnowledgeView& view) const {
  std::vector<SinkCandidate> out;
  for (const IdSet& scc : received_sccs(view)) {
    const auto& ids = scc.values();
    const std::size_t n = ids.size();
    const std::size_t cap = std::min(options_.removal_cap, n - 1);

    // C itself, then C \ D for every removal set D with |D| <= cap.
    collect_candidates_for(view, scc, out);
    for (std::size_t d = 1; d <= cap; ++d) {
      std::vector<std::size_t> combo(d);
      for (std::size_t i = 0; i < d; ++i) combo[i] = i;
      bool more = true;
      while (more) {
        IdSet s1 = scc;
        for (std::size_t idx : combo) s1.erase(ids[idx]);
        collect_candidates_for(view, s1, out);

        // Advance to the next d-combination of {0..n-1}.
        more = false;
        for (std::size_t i = d; i-- > 0;) {
          if (combo[i] < n - d + i) {
            ++combo[i];
            for (std::size_t j = i + 1; j < d; ++j) combo[j] = combo[j - 1] + 1;
            more = true;
            break;
          }
        }
      }
    }
  }
  return out;
}

std::unique_ptr<SinkSearch> make_default_search() {
  return std::make_unique<ExhaustiveSinkSearch>();
}

}  // namespace bftcup::protocol

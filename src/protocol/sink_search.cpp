#include "protocol/sink_search.hpp"

#include <algorithm>
#include <bit>
#include <set>

#include "common/fnv.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "protocol/eval_cache.hpp"

namespace bftcup::protocol {
namespace {

/// The structured strategy's full C \ D combination sweep stops here; the
/// exhaustive strategy stops at its (clamped <= 63) subset-mask cap. Both
/// hand larger components to enumerate_big_scc.
constexpr std::size_t kStructuredEnumerationCap = 63;

thread_local std::uint64_t t_big_scc_fallbacks = 0;
thread_local bool t_big_scc_warned = false;

/// Counts an oversized component and logs the fallback warning once per
/// run (reset_big_scc_fallbacks re-arms it) — a large-n run hits this once
/// per evaluation per big component, which used to flood the log.
void note_big_scc_fallback(std::size_t scc_size, std::size_t cap) {
  ++t_big_scc_fallbacks;
  if (t_big_scc_warned) return;
  t_big_scc_warned = true;
  LOG_WARN("sink_search") << "SCC of size " << scc_size
                          << " exceeds enumeration cap " << cap
                          << "; certifying via the sampled structured path"
                          << " (logged once per run)";
}

/// Appends every admissible split of `s1` as a candidate. Shared by the cold
/// and incremental paths; `scratch` (optional) routes the split computation
/// through the view's per-S1 memo.
void collect_candidates_for(const KnowledgeView& view, EvalScratch* scratch,
                            const IdSet& s1, std::vector<SinkCandidate>& out) {
  if (scratch != nullptr) {
    for (const AdmissibleSplit& split :
         admissible_thresholds_memo(view, s1, *scratch)) {
      out.push_back({s1, split.s2, split.g});
    }
    return;
  }
  for (AdmissibleSplit& split : admissible_thresholds(view, s1)) {
    out.push_back({s1, std::move(split.s2), split.g});
  }
}

/// Candidates the exhaustive strategy derives from one SCC: every non-empty
/// subset, masks ascending. One scratch S1 is reused across all 2^n - 1
/// masks (cleared, refilled in ascending id order) so the inner loop's only
/// allocation is its first capacity growth — the FlatSet-scratch half of
/// the run engine's near-zero-heap steady state. collect_candidates_for
/// copies S1 into whatever it emits, so reuse cannot leak.
void enumerate_exhaustive(const KnowledgeView& view, EvalScratch* scratch,
                          const IdSet& scc, std::vector<SinkCandidate>& out) {
  const auto& ids = scc.values();
  const std::size_t n = ids.size();
  IdSet s1;
  s1.reserve(n);
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    s1.clear();
    for (std::size_t b = 0; b < n; ++b) {
      // ids is sorted, so these inserts are ordered appends.
      if (mask & (std::uint64_t{1} << b)) s1.insert(ids[b]);
    }
    collect_candidates_for(view, scratch, s1, out);
  }
}

/// Candidates the structured strategy derives from one SCC: C itself, then
/// C \ D for every removal set D with |D| <= removal_cap.
void enumerate_structured(const KnowledgeView& view, EvalScratch* scratch,
                          const IdSet& scc, std::size_t removal_cap,
                          std::vector<SinkCandidate>& out) {
  const auto& ids = scc.values();
  const std::size_t n = ids.size();
  const std::size_t cap = std::min(removal_cap, n - 1);

  collect_candidates_for(view, scratch, scc, out);
  for (std::size_t d = 1; d <= cap; ++d) {
    std::vector<std::size_t> combo(d);
    for (std::size_t i = 0; i < d; ++i) combo[i] = i;
    bool more = true;
    while (more) {
      IdSet s1 = scc;
      for (std::size_t idx : combo) s1.erase(ids[idx]);
      collect_candidates_for(view, scratch, s1, out);

      // Advance to the next d-combination of {0..n-1}.
      more = false;
      for (std::size_t i = d; i-- > 0;) {
        if (combo[i] < n - d + i) {
          ++combo[i];
          for (std::size_t j = i + 1; j < d; ++j) combo[j] = combo[j - 1] + 1;
          more = true;
          break;
        }
      }
    }
  }
}

/// The incremental driver shared by both strategies. Iterates the current
/// SCC decomposition in order; an SCC whose member set is present in the
/// strategy's cache is clean (PDs are immutable and known() growth cannot
/// alter its candidates — README "Membership engine caching"), everything
/// else is dirty and re-enumerated through `enumerate`, with the per-S1
/// split memo absorbing subsets already costed in an earlier revision.
/// Output order is identical to a cold run: current SCC order, and within
/// an SCC the enumeration order `enumerate` defines.
/// SCCs of the knowledge graph restricted to processes with received PDs —
/// any strongly connected S1 (P2 needs κ >= 1) is a subset of one of these.
/// Shared by the cold path and churn-suspended incremental evaluations;
/// the snapshot the warm incremental path reads is built from the
/// identical construction, so enumeration order matches bit-for-bit.
std::vector<IdSet> received_sccs(const KnowledgeView& view) {
  const graph::Digraph k = view.knowledge_graph().induced(view.received());
  return graph::strongly_connected_components(k).members;
}

template <typename Enumerate>
std::vector<SinkCandidate> incremental_candidates(const KnowledgeView& view,
                                                  const std::string& cache_key,
                                                  Enumerate&& enumerate) {
  std::vector<SinkCandidate> out;
  EvalScratch& scratch = view.eval_scratch();

  // Churn-phase evaluation (see EvalScratch::memo_suspended): enumerate at
  // cold speed — no candidate cache, no prune, no split memo, and no
  // persistent per-view snapshot (a churning view's snapshot is rebuilt
  // every revision anyway, and keeping one graph resident per node evicts
  // the max-flow scratch from cache). Identical output, none of the
  // bookkeeping that cannot amortize.
  if (scratch.memo_suspended) {
    for (const IdSet& scc : received_sccs(view)) {
      enumerate(view, nullptr, scc, out);
    }
    return out;
  }

  const auto& snapshot = view.received_scc_snapshot();
  EvalScratch::StrategyCache& cache = scratch.strategies[cache_key];

  // Drop entries for SCCs that no longer exist (they merged into a bigger
  // component); their subsets stay warm in the split memo.
  if (cache.pruned_revision != view.revision()) {
    std::vector<const IdSet*> current;
    current.reserve(snapshot.sccs.members.size());
    for (const IdSet& scc : snapshot.sccs.members) current.push_back(&scc);
    const auto by_value = [](const IdSet* a, const IdSet* b) {
      return *a < *b;
    };
    std::sort(current.begin(), current.end(), by_value);
    std::erase_if(cache.by_scc, [&](const auto& entry) {
      return !std::binary_search(current.begin(), current.end(), &entry.first,
                                 by_value);
    });
    cache.pruned_revision = view.revision();
  }

  for (const IdSet& scc : snapshot.sccs.members) {
    const auto it = cache.by_scc.find(scc);
    if (it != cache.by_scc.end() && it->second.filled) {
      ++scratch.stats.scc_hits;
      out.insert(out.end(), it->second.candidates.begin(),
                 it->second.candidates.end());
      continue;
    }
    ++scratch.stats.scc_misses;
    // Two-touch admission (see EvalScratch::CachedCandidates): record the
    // key on first sight, store the candidate vector only once the same
    // member set survives to a second enumeration. Discovery-churn SCCs
    // are pruned before their second touch and never pay the copy.
    if (it == cache.by_scc.end()) {
      enumerate(view, &scratch, scc, out);  // straight into the output
      cache.by_scc.emplace(scc, EvalScratch::CachedCandidates{});
      continue;
    }
    std::vector<SinkCandidate> fresh;
    enumerate(view, &scratch, scc, fresh);
    out.insert(out.end(), fresh.begin(), fresh.end());
    it->second.filled = true;
    it->second.candidates = std::move(fresh);
  }
  return out;
}

/// Big-SCC certification: components too large to enumerate are *certified
/// or refuted* instead of skipped. The component C itself is always
/// evaluated — its κ runs through the connectivity early-exits
/// (complete-graph closed form, degree bound, pivot flows), so a genuine
/// sink component of any size certifies and a κ-deficient one refutes
/// without touching 2^|C| subsets. Around C, seeded samples of C \ D
/// probe the bounded-removal family the structured strategy would sweep.
/// The RNG seed is FNV over the member ids: a pure function of the
/// component, so replays, cross-thread runs, and the incremental cache all
/// see the same candidate stream (and no ambient entropy enters — R2).
void enumerate_big_scc(const KnowledgeView& view, EvalScratch* scratch,
                       const IdSet& scc, std::size_t removal_cap,
                       std::size_t samples, std::vector<SinkCandidate>& out) {
  collect_candidates_for(view, scratch, scc, out);
  if (samples == 0) return;

  const auto& ids = scc.values();
  const std::size_t n = ids.size();
  const std::size_t cap = std::min(removal_cap, n - 1);

  std::uint64_t seed = kFnvOffsetBasis;
  for (ProcessId id : scc) seed = fnv1a_mix_u64(seed, id.raw());
  Rng rng(seed);

  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::size_t> combo;
  for (std::size_t d = 1; d <= cap; ++d) {
    std::set<std::vector<std::size_t>> seen;
    // A duplicate draw is wasted, not retried forever: the attempt budget
    // keeps the path strictly bounded.
    for (std::size_t attempt = 0;
         attempt < samples * 4 && seen.size() < samples; ++attempt) {
      // Partial Fisher–Yates: d distinct member indices.
      for (std::size_t k = 0; k < d; ++k) {
        const std::size_t j =
            k + static_cast<std::size_t>(rng.next_below(n - k));
        std::swap(pool[k], pool[j]);
      }
      combo.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(d));
      std::sort(combo.begin(), combo.end());
      if (!seen.insert(combo).second) continue;
      IdSet s1 = scc;
      for (std::size_t idx : combo) s1.erase(ids[idx]);
      collect_candidates_for(view, scratch, s1, out);
    }
  }
}

std::string options_key(const char* name, const SearchOptions& options) {
  std::string key = name;
  key += "/cap=" + std::to_string(options.exhaustive_cap);
  key += "/rm=" + std::to_string(options.removal_cap);
  key += "/bs=" + std::to_string(options.big_scc_samples);
  return key;
}

}  // namespace

SearchOptions SearchOptions::validated() const {
  SearchOptions out = *this;
  // A 64-bit mask enumerates at most 2^63 subsets; larger caps would shift
  // by >= 64 bits (UB). Clamping is safe: SCCs beyond 63 members could never
  // finish enumerating anyway.
  out.exhaustive_cap = std::min<std::size_t>(out.exhaustive_cap, 63);
  return out;
}

ExhaustiveSinkSearch::ExhaustiveSinkSearch(SearchOptions options)
    : options_(options.validated()),
      cache_key_(options_key("exhaustive", options_)) {}

StructuredSinkSearch::StructuredSinkSearch(SearchOptions options)
    : options_(options.validated()),
      cache_key_(options_key("structured", options_)) {}

std::vector<SinkCandidate> ExhaustiveSinkSearch::candidates(
    const KnowledgeView& view) const {
  const auto enumerate = [this](const KnowledgeView& v, EvalScratch* scratch,
                                const IdSet& scc,
                                std::vector<SinkCandidate>& out) {
    if (scc.size() > options_.exhaustive_cap) {
      note_big_scc_fallback(scc.size(), options_.exhaustive_cap);
      enumerate_big_scc(v, scratch, scc, options_.removal_cap,
                        options_.big_scc_samples, out);
      return;
    }
    enumerate_exhaustive(v, scratch, scc, out);
  };

  if (options_.incremental) {
    return incremental_candidates(view, cache_key_, enumerate);
  }
  std::vector<SinkCandidate> out;
  for (const IdSet& scc : received_sccs(view)) {
    enumerate(view, nullptr, scc, out);
  }
  return out;
}

std::vector<SinkCandidate> StructuredSinkSearch::candidates(
    const KnowledgeView& view) const {
  const auto enumerate = [this](const KnowledgeView& v, EvalScratch* scratch,
                                const IdSet& scc,
                                std::vector<SinkCandidate>& out) {
    if (scc.size() > kStructuredEnumerationCap) {
      note_big_scc_fallback(scc.size(), kStructuredEnumerationCap);
      enumerate_big_scc(v, scratch, scc, options_.removal_cap,
                        options_.big_scc_samples, out);
      return;
    }
    enumerate_structured(v, scratch, scc, options_.removal_cap, out);
  };

  if (options_.incremental) {
    return incremental_candidates(view, cache_key_, enumerate);
  }
  std::vector<SinkCandidate> out;
  for (const IdSet& scc : received_sccs(view)) {
    enumerate(view, nullptr, scc, out);
  }
  return out;
}

std::unique_ptr<SinkSearch> make_default_search() {
  return std::make_unique<ExhaustiveSinkSearch>();
}

std::uint64_t big_scc_fallbacks() { return t_big_scc_fallbacks; }

void reset_big_scc_fallbacks() {
  t_big_scc_fallbacks = 0;
  t_big_scc_warned = false;
}

}  // namespace bftcup::protocol

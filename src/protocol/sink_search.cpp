#include "protocol/sink_search.hpp"

#include <algorithm>
#include <bit>
#include <set>

#include "common/fnv.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/work_pool.hpp"
#include "obs/span_tracer.hpp"
#include "protocol/eval_cache.hpp"

namespace bftcup::protocol {
namespace {

/// The structured strategy's full C \ D combination sweep stops here; the
/// exhaustive strategy stops at its (clamped <= 63) subset-mask cap. Both
/// hand larger components to enumerate_big_scc.
constexpr std::size_t kStructuredEnumerationCap = 63;

thread_local std::uint64_t t_big_scc_fallbacks = 0;
thread_local bool t_big_scc_warned = false;

/// Counts an oversized component and logs the fallback warning once per
/// run (reset_big_scc_fallbacks re-arms it) — a large-n run hits this once
/// per evaluation per big component, which used to flood the log.
/// Always called on the run's own thread: the parallel drivers evaluate
/// oversized components from the caller context (their inner sample and
/// pivot loops are what fan out), so the thread-local counter and the
/// warn-once latch keep working unchanged.
void note_big_scc_fallback(std::size_t scc_size, std::size_t cap) {
  ++t_big_scc_fallbacks;
  if (t_big_scc_warned) return;
  t_big_scc_warned = true;
  LOG_WARN("sink_search") << "SCC of size " << scc_size
                          << " exceeds enumeration cap " << cap
                          << "; certifying via the sampled structured path"
                          << " (logged once per run)";
}

/// Memo routing for one enumeration call. `local` is where split memo
/// reads and writes go (the view's own scratch on the serial path, a
/// worker-private pad during a parallel dispatch, nullptr in suspended /
/// non-incremental mode = no memos at all). `shared` is a read-only
/// overlay consulted before `local` — the view's scratch, frozen while a
/// dispatch is in flight; workers hit it for splits costed in earlier
/// revisions and write misses to their own pad, which the driver merges
/// back worker-index-ordered after the join. Everything memoized is a pure
/// function of the view, so pad contents are schedule-independent.
struct EvalPads {
  EvalScratch* local = nullptr;
  const EvalScratch* shared = nullptr;
};

/// Appends every admissible split of `s1` as a candidate. Shared by the cold
/// and incremental paths; `pads` routes the split computation through the
/// per-S1 memo tiers (see EvalPads).
void collect_candidates_for(const KnowledgeView& view, const EvalPads& pads,
                            const IdSet& s1, std::vector<SinkCandidate>& out) {
  if (pads.local != nullptr) {
    for (const AdmissibleSplit& split :
         admissible_thresholds_padded(view, s1, pads.shared, *pads.local)) {
      out.push_back({s1, split.s2, split.g});
    }
    return;
  }
  for (AdmissibleSplit& split : admissible_thresholds(view, s1)) {
    out.push_back({s1, std::move(split.s2), split.g});
  }
}

/// Candidates the exhaustive strategy derives from one SCC: every non-empty
/// subset, masks ascending. One scratch S1 is reused across all 2^n - 1
/// masks (cleared, refilled in ascending id order) so the inner loop's only
/// allocation is its first capacity growth — the FlatSet-scratch half of
/// the run engine's near-zero-heap steady state. collect_candidates_for
/// copies S1 into whatever it emits, so reuse cannot leak.
void enumerate_exhaustive(const KnowledgeView& view, const EvalPads& pads,
                          const IdSet& scc, std::vector<SinkCandidate>& out) {
  const auto& ids = scc.values();
  const std::size_t n = ids.size();
  IdSet s1;
  s1.reserve(n);
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    s1.clear();
    for (std::size_t b = 0; b < n; ++b) {
      // ids is sorted, so these inserts are ordered appends.
      if (mask & (std::uint64_t{1} << b)) s1.insert(ids[b]);
    }
    collect_candidates_for(view, pads, s1, out);
  }
}

/// Candidates the structured strategy derives from one SCC: C itself, then
/// C \ D for every removal set D with |D| <= removal_cap.
void enumerate_structured(const KnowledgeView& view, const EvalPads& pads,
                          const IdSet& scc, std::size_t removal_cap,
                          std::vector<SinkCandidate>& out) {
  const auto& ids = scc.values();
  const std::size_t n = ids.size();
  const std::size_t cap = std::min(removal_cap, n - 1);

  collect_candidates_for(view, pads, scc, out);
  for (std::size_t d = 1; d <= cap; ++d) {
    std::vector<std::size_t> combo(d);
    for (std::size_t i = 0; i < d; ++i) combo[i] = i;
    bool more = true;
    while (more) {
      IdSet s1 = scc;
      for (std::size_t idx : combo) s1.erase(ids[idx]);
      collect_candidates_for(view, pads, s1, out);

      // Advance to the next d-combination of {0..n-1}.
      more = false;
      for (std::size_t i = d; i-- > 0;) {
        if (combo[i] < n - d + i) {
          ++combo[i];
          for (std::size_t j = i + 1; j < d; ++j) combo[j] = combo[j - 1] + 1;
          more = true;
          break;
        }
      }
    }
  }
}

/// SCCs of the knowledge graph restricted to processes with received PDs —
/// any strongly connected S1 (P2 needs κ >= 1) is a subset of one of these.
/// Shared by the cold path and churn-suspended incremental evaluations;
/// the snapshot the warm incremental path reads is built from the
/// identical construction, so enumeration order matches bit-for-bit.
std::vector<IdSet> received_sccs(const KnowledgeView& view) {
  const graph::Digraph k = view.knowledge_graph().induced(view.received());
  return graph::strongly_connected_components(k).members;
}

/// Fans `jobs` (dirty SCCs at or below the big-SCC threshold, paired with
/// their output slot index) out across the pool. Each worker enumerates
/// through its own EvalScratch pad overlaid on the view's frozen scratch
/// (EvalPads); candidates land in slots addressed by job index, never in
/// completion order, and pads are merged back worker-index-ordered after
/// the join — so the assembled output is byte-identical to the serial
/// loop. `view_scratch == nullptr` (suspended / non-incremental mode)
/// enumerates memo-free, exactly like the serial cold path.
template <typename Enumerate>
void enumerate_jobs(WorkPool& pool, const KnowledgeView& view,
                    EvalScratch* view_scratch,
                    const std::vector<const IdSet*>& jobs,
                    const std::vector<std::size_t>& job_slot,
                    std::vector<std::vector<SinkCandidate>>& slots,
                    const Enumerate& enumerate) {
  if (jobs.empty()) return;
  const std::size_t workers = pool.workers();
  std::vector<EvalScratch> pads(view_scratch != nullptr ? workers : 0);
  const std::size_t chunk =
      std::max<std::size_t>(1, jobs.size() / (workers * 8));
  pool.run(jobs.size(), chunk,
           [&](std::size_t begin, std::size_t end, std::size_t worker) {
             const EvalPads eval_pads{
                 view_scratch != nullptr ? &pads[worker] : nullptr,
                 view_scratch};
             for (std::size_t j = begin; j < end; ++j) {
               enumerate(view, eval_pads, *jobs[j], slots[job_slot[j]]);
             }
           });
  if (view_scratch == nullptr) return;
  for (EvalScratch& pad : pads) {
    // emplace keeps the first value per key; duplicates across pads hold
    // identical values (pure functions of the view), so merge order only
    // needs to be *fixed*, not anything in particular.
    for (auto& entry : pad.splits) {
      view_scratch->splits.emplace(entry.first, std::move(entry.second));
    }
    view_scratch->stats.split_hits += pad.stats.split_hits;
    view_scratch->stats.split_misses += pad.stats.split_misses;
  }
}

/// Drives one full SCC list (cold / churn-suspended evaluations: every SCC
/// is enumerated, no candidate cache). Serial without a usable pool;
/// otherwise small SCCs fan out while oversized ones run from the caller
/// context so their inner sample/pivot loops can use the pool themselves.
template <typename Enumerate>
std::vector<SinkCandidate> enumerate_sequence(const KnowledgeView& view,
                                              EvalScratch* scratch,
                                              std::size_t big_threshold,
                                              const std::vector<IdSet>& sccs,
                                              const Enumerate& enumerate) {
  std::vector<SinkCandidate> out;
  WorkPool* pool = usable_work_pool();
  if (pool == nullptr || pool->workers() <= 1 || sccs.size() <= 1) {
    const EvalPads pads{scratch, nullptr};
    for (const IdSet& scc : sccs) enumerate(view, pads, scc, out);
    return out;
  }

  std::vector<std::vector<SinkCandidate>> slots(sccs.size());
  std::vector<const IdSet*> small;
  std::vector<std::size_t> small_slot;
  std::vector<std::size_t> big;
  for (std::size_t i = 0; i < sccs.size(); ++i) {
    if (sccs[i].size() > big_threshold) {
      big.push_back(i);
    } else {
      small.push_back(&sccs[i]);
      small_slot.push_back(i);
    }
  }
  enumerate_jobs(*pool, view, scratch, small, small_slot, slots, enumerate);
  for (std::size_t i : big) {
    const EvalPads pads{scratch, nullptr};
    enumerate(view, pads, sccs[i], slots[i]);
  }
  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  out.reserve(total);
  for (auto& slot : slots) {
    out.insert(out.end(), std::make_move_iterator(slot.begin()),
               std::make_move_iterator(slot.end()));
  }
  return out;
}

/// The incremental driver shared by both strategies. Iterates the current
/// SCC decomposition in order; an SCC whose member set is present in the
/// strategy's cache is clean (PDs are immutable and known() growth cannot
/// alter its candidates — README "Membership engine caching"), everything
/// else is dirty and re-enumerated through `enumerate`, with the per-S1
/// split memo absorbing subsets already costed in an earlier revision.
/// Output order is identical to a cold run: current SCC order, and within
/// an SCC the enumeration order `enumerate` defines. With a pool installed
/// the dirty SCCs fan out (slots by SCC index, worker pads merged after
/// the join); classification, cache bookkeeping, and assembly stay on the
/// caller, so the two-touch admission logic is untouched.
template <typename Enumerate>
std::vector<SinkCandidate> incremental_candidates(const KnowledgeView& view,
                                                  const std::string& cache_key,
                                                  std::size_t big_threshold,
                                                  const Enumerate& enumerate) {
  std::vector<SinkCandidate> out;
  EvalScratch& scratch = view.eval_scratch();

  // Churn-phase evaluation (see EvalScratch::memo_suspended): enumerate at
  // cold speed — no candidate cache, no prune, no split memo, and no
  // persistent per-view snapshot (a churning view's snapshot is rebuilt
  // every revision anyway, and keeping one graph resident per node evicts
  // the max-flow scratch from cache). Identical output, none of the
  // bookkeeping that cannot amortize.
  if (scratch.memo_suspended) {
    return enumerate_sequence(view, nullptr, big_threshold,
                              received_sccs(view), enumerate);
  }

  const auto& snapshot = view.received_scc_snapshot();
  EvalScratch::StrategyCache& cache = scratch.strategies[cache_key];

  // Drop entries for SCCs that no longer exist (they merged into a bigger
  // component); their subsets stay warm in the split memo.
  if (cache.pruned_revision != view.revision()) {
    std::vector<const IdSet*> current;
    current.reserve(snapshot.sccs.members.size());
    for (const IdSet& scc : snapshot.sccs.members) current.push_back(&scc);
    const auto by_value = [](const IdSet* a, const IdSet* b) {
      return *a < *b;
    };
    std::sort(current.begin(), current.end(), by_value);
    std::erase_if(cache.by_scc, [&](const auto& entry) {
      return !std::binary_search(current.begin(), current.end(), &entry.first,
                                 by_value);
    });
    cache.pruned_revision = view.revision();
  }

  WorkPool* pool = usable_work_pool();
  if (pool == nullptr || pool->workers() <= 1) {
    const EvalPads pads{&scratch, nullptr};
    for (const IdSet& scc : snapshot.sccs.members) {
      const auto it = cache.by_scc.find(scc);
      if (it != cache.by_scc.end() && it->second.filled) {
        ++scratch.stats.scc_hits;
        out.insert(out.end(), it->second.candidates.begin(),
                   it->second.candidates.end());
        continue;
      }
      ++scratch.stats.scc_misses;
      // Two-touch admission (see EvalScratch::CachedCandidates): record the
      // key on first sight, store the candidate vector only once the same
      // member set survives to a second enumeration. Discovery-churn SCCs
      // are pruned before their second touch and never pay the copy.
      if (it == cache.by_scc.end()) {
        enumerate(view, pads, scc, out);  // straight into the output
        cache.by_scc.emplace(scc, EvalScratch::CachedCandidates{});
        continue;
      }
      std::vector<SinkCandidate> fresh;
      enumerate(view, pads, scc, fresh);
      out.insert(out.end(), fresh.begin(), fresh.end());
      it->second.filled = true;
      it->second.candidates = std::move(fresh);
    }
    return out;
  }

  // Parallel path: classify on the caller (cache probes and stats), fan
  // dirty SCCs out into index-addressed slots, assemble + fill the cache
  // in SCC order afterwards. Candidate content and order are identical to
  // the serial loop above; only where the split memos get *computed*
  // differs, and those are pure caches.
  const auto& sccs = snapshot.sccs.members;
  const std::size_t n = sccs.size();
  enum class Touch : unsigned char { kHit, kFirst, kSecond };
  std::vector<Touch> touch(n, Touch::kHit);
  std::vector<std::vector<SinkCandidate>> slots(n);
  std::vector<const IdSet*> small;
  std::vector<std::size_t> small_slot;
  std::vector<std::size_t> big;
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = cache.by_scc.find(sccs[i]);
    if (it != cache.by_scc.end() && it->second.filled) {
      ++scratch.stats.scc_hits;
      continue;
    }
    ++scratch.stats.scc_misses;
    touch[i] = it == cache.by_scc.end() ? Touch::kFirst : Touch::kSecond;
    if (sccs[i].size() > big_threshold) {
      big.push_back(i);
    } else {
      small.push_back(&sccs[i]);
      small_slot.push_back(i);
    }
  }
  enumerate_jobs(*pool, view, &scratch, small, small_slot, slots, enumerate);
  // Oversized components run from the caller context so their sample and
  // pivot fan-outs can take the pool themselves (a dispatch from inside a
  // task would be rejected; usable_work_pool() would hand them nullptr).
  for (std::size_t i : big) {
    const EvalPads pads{&scratch, nullptr};
    enumerate(view, pads, sccs[i], slots[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    switch (touch[i]) {
      case Touch::kHit: {
        const auto it = cache.by_scc.find(sccs[i]);
        out.insert(out.end(), it->second.candidates.begin(),
                   it->second.candidates.end());
        break;
      }
      case Touch::kFirst:
        out.insert(out.end(), slots[i].begin(), slots[i].end());
        cache.by_scc.emplace(sccs[i], EvalScratch::CachedCandidates{});
        break;
      case Touch::kSecond: {
        out.insert(out.end(), slots[i].begin(), slots[i].end());
        const auto it = cache.by_scc.find(sccs[i]);
        it->second.filled = true;
        it->second.candidates = std::move(slots[i]);
        break;
      }
    }
  }
  return out;
}

/// Big-SCC certification: components too large to enumerate are *certified
/// or refuted* instead of skipped. The component C itself is always
/// evaluated — its κ runs through the connectivity early-exits
/// (complete-graph closed form, degree bound, pivot flows), so a genuine
/// sink component of any size certifies and a κ-deficient one refutes
/// without touching 2^|C| subsets. Around C, seeded samples of C \ D
/// probe the bounded-removal family the structured strategy would sweep.
/// The RNG seed is FNV over the member ids: a pure function of the
/// component, so replays, cross-thread runs, and the incremental cache all
/// see the same candidate stream (and no ambient entropy enters — R2).
/// The sample stream is *generated* serially (the RNG is sequential), then
/// *evaluated* through the pool when one is usable — slots by sample
/// index, worker pads merged after the join, so the emitted candidates
/// match the serial interleaving exactly.
void enumerate_big_scc(const KnowledgeView& view, const EvalPads& pads,
                       const IdSet& scc, std::size_t removal_cap,
                       std::size_t samples, std::vector<SinkCandidate>& out) {
  collect_candidates_for(view, pads, scc, out);
  if (samples == 0) return;

  const auto& ids = scc.values();
  const std::size_t n = ids.size();
  const std::size_t cap = std::min(removal_cap, n - 1);

  std::uint64_t seed = kFnvOffsetBasis;
  for (ProcessId id : scc) seed = fnv1a_mix_u64(seed, id.raw());
  Rng rng(seed);

  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::size_t> combo;
  std::vector<IdSet> sample_s1s;
  for (std::size_t d = 1; d <= cap; ++d) {
    std::set<std::vector<std::size_t>> seen;
    // A duplicate draw is wasted, not retried forever: the attempt budget
    // keeps the path strictly bounded.
    for (std::size_t attempt = 0;
         attempt < samples * 4 && seen.size() < samples; ++attempt) {
      // Partial Fisher–Yates: d distinct member indices.
      for (std::size_t k = 0; k < d; ++k) {
        const std::size_t j =
            k + static_cast<std::size_t>(rng.next_below(n - k));
        std::swap(pool[k], pool[j]);
      }
      combo.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(d));
      std::sort(combo.begin(), combo.end());
      if (!seen.insert(combo).second) continue;
      IdSet s1 = scc;
      for (std::size_t idx : combo) s1.erase(ids[idx]);
      sample_s1s.push_back(std::move(s1));
    }
  }

  WorkPool* wp = usable_work_pool();
  if (wp == nullptr || wp->workers() <= 1 || sample_s1s.size() <= 1) {
    for (const IdSet& s1 : sample_s1s) {
      collect_candidates_for(view, pads, s1, out);
    }
    return;
  }
  const std::size_t workers = wp->workers();
  std::vector<std::vector<SinkCandidate>> slots(sample_s1s.size());
  std::vector<EvalScratch> worker_pads(pads.local != nullptr ? workers : 0);
  const EvalScratch* shared =
      pads.shared != nullptr ? pads.shared : pads.local;
  wp->run(sample_s1s.size(), 1,
          [&](std::size_t begin, std::size_t end, std::size_t worker) {
            const EvalPads eval_pads{
                pads.local != nullptr ? &worker_pads[worker] : nullptr,
                shared};
            for (std::size_t j = begin; j < end; ++j) {
              collect_candidates_for(view, eval_pads, sample_s1s[j], slots[j]);
            }
          });
  if (pads.local != nullptr) {
    for (EvalScratch& pad : worker_pads) {
      for (auto& entry : pad.splits) {
        pads.local->splits.emplace(entry.first, std::move(entry.second));
      }
      pads.local->stats.split_hits += pad.stats.split_hits;
      pads.local->stats.split_misses += pad.stats.split_misses;
    }
  }
  for (auto& slot : slots) {
    out.insert(out.end(), std::make_move_iterator(slot.begin()),
               std::make_move_iterator(slot.end()));
  }
}

std::string options_key(const char* name, const SearchOptions& options) {
  std::string key = name;
  key += "/cap=" + std::to_string(options.exhaustive_cap);
  key += "/rm=" + std::to_string(options.removal_cap);
  key += "/bs=" + std::to_string(options.big_scc_samples);
  // parallel_eval is deliberately absent: thread count must not change
  // results (the parallel==serial property suite asserts it), so it must
  // not split the candidate caches or the shared eval memo either.
  return key;
}

}  // namespace

SearchOptions SearchOptions::validated() const {
  SearchOptions out = *this;
  // A 64-bit mask enumerates at most 2^63 subsets; larger caps would shift
  // by >= 64 bits (UB). Clamping is safe: SCCs beyond 63 members could never
  // finish enumerating anyway.
  out.exhaustive_cap = std::min<std::size_t>(out.exhaustive_cap, 63);
  return out;
}

ExhaustiveSinkSearch::ExhaustiveSinkSearch(SearchOptions options)
    : options_(options.validated()),
      cache_key_(options_key("exhaustive", options_)) {}

StructuredSinkSearch::StructuredSinkSearch(SearchOptions options)
    : options_(options.validated()),
      cache_key_(options_key("structured", options_)) {}

std::vector<SinkCandidate> ExhaustiveSinkSearch::candidates(
    const KnowledgeView& view) const {
  // Strategy-level parallelism for direct library use; a pool installed by
  // the run engine (Scenario::parallel_eval) takes precedence.
  const WorkPoolScope scope(
      current_work_pool() == nullptr ? options_.parallel_eval : 0);
  const auto enumerate = [this](const KnowledgeView& v, const EvalPads& pads,
                                const IdSet& scc,
                                std::vector<SinkCandidate>& out) {
    // Observability: this lambda runs on the run's own thread (the
    // parallel drivers fan out its *inner* loops), so the span and the
    // SCC-size histogram are identical at every parallel_eval setting.
    const obs::ScopedSpan span("membership.scc_eval", scc.size());
    if (obs::MetricsRegistry* m = obs::current_metrics()) {
      m->histogram("eval.scc_size").record(scc.size());
    }
    if (scc.size() > options_.exhaustive_cap) {
      note_big_scc_fallback(scc.size(), options_.exhaustive_cap);
      const obs::ScopedSpan certify("membership.big_scc_certify", scc.size());
      enumerate_big_scc(v, pads, scc, options_.removal_cap,
                        options_.big_scc_samples, out);
      return;
    }
    enumerate_exhaustive(v, pads, scc, out);
  };

  if (options_.incremental) {
    return incremental_candidates(view, cache_key_, options_.exhaustive_cap,
                                  enumerate);
  }
  return enumerate_sequence(view, nullptr, options_.exhaustive_cap,
                            received_sccs(view), enumerate);
}

std::vector<SinkCandidate> StructuredSinkSearch::candidates(
    const KnowledgeView& view) const {
  const WorkPoolScope scope(
      current_work_pool() == nullptr ? options_.parallel_eval : 0);
  const auto enumerate = [this](const KnowledgeView& v, const EvalPads& pads,
                                const IdSet& scc,
                                std::vector<SinkCandidate>& out) {
    // Run-thread only, like the exhaustive twin above (see its comment).
    const obs::ScopedSpan span("membership.scc_eval", scc.size());
    if (obs::MetricsRegistry* m = obs::current_metrics()) {
      m->histogram("eval.scc_size").record(scc.size());
    }
    if (scc.size() > kStructuredEnumerationCap) {
      note_big_scc_fallback(scc.size(), kStructuredEnumerationCap);
      const obs::ScopedSpan certify("membership.big_scc_certify", scc.size());
      enumerate_big_scc(v, pads, scc, options_.removal_cap,
                        options_.big_scc_samples, out);
      return;
    }
    enumerate_structured(v, pads, scc, options_.removal_cap, out);
  };

  if (options_.incremental) {
    return incremental_candidates(view, cache_key_, kStructuredEnumerationCap,
                                  enumerate);
  }
  return enumerate_sequence(view, nullptr, kStructuredEnumerationCap,
                            received_sccs(view), enumerate);
}

std::unique_ptr<SinkSearch> make_default_search() {
  return std::make_unique<ExhaustiveSinkSearch>();
}

std::uint64_t big_scc_fallbacks() { return t_big_scc_fallbacks; }

void reset_big_scc_fallbacks() {
  t_big_scc_fallbacks = 0;
  t_big_scc_warned = false;
}

}  // namespace bftcup::protocol

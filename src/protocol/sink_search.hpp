// Candidate enumeration for the Sink (Alg. 2) and Core (Alg. 4) algorithms.
//
// The algorithms as specified quantify existentially over subsets of
// S_received — an exponential search. Two strategies are provided behind one
// interface (DESIGN.md §4.3):
//
//  * ExhaustiveSinkSearch — bitmask enumeration of subsets inside each SCC
//    of the received-knowledge graph (any strongly connected S1 lies inside
//    one SCC). Reference semantics; SCCs above the cap take the big-SCC
//    certification path (component + seeded C \ D samples) instead of
//    being skipped.
//  * StructuredSinkSearch — candidate S1s are SCCs of the received-knowledge
//    graph plus bounded removals C \ D, |D| <= removal_cap. Polynomial for
//    fixed cap; exploits that satisfying S1s are SCC-shaped (correct sink
//    members are mutually (f+1)-connected, and at most f Byzantine/silent
//    processes perturb the component).
//
// Both strategies are *incremental* by default: they key a candidate cache
// in the view's EvalScratch by SCC member set, so only components whose
// membership changed since the last evaluation are re-enumerated (the
// dirty-SCC mechanism), and within a re-enumerated component the per-S1
// split memo answers every subset already seen. Candidate order — and
// therefore every downstream decision — is bit-identical to a cold run;
// `SearchOptions::incremental = false` bypasses every memo for A/B testing.
//
// Property tests cross-validate the two strategies on random graphs, and
// incremental-vs-cold equality across randomized add_pd sequences.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "protocol/sink_predicate.hpp"

namespace bftcup::protocol {

/// One satisfying assignment of the isSink predicate.
struct SinkCandidate {
  IdSet s1;
  IdSet s2;
  std::size_t g = 0;  ///< fault threshold witnessing this candidate

  [[nodiscard]] IdSet members() const { return s1.set_union(s2); }

  friend bool operator==(const SinkCandidate&, const SinkCandidate&) = default;
};

struct SearchOptions {
  /// Exhaustive strategy: SCCs larger than this take the big-SCC
  /// certification path (see big_scc_samples) instead of being bitmask-
  /// enumerated. Values >= 64 are clamped to 63 by the strategies — a
  /// 64-bit subset mask cannot enumerate further, and the unclamped shift
  /// would be undefined behavior.
  std::size_t exhaustive_cap = 16;
  /// Structured strategy: maximum |D| for C \ D candidates.
  std::size_t removal_cap = 3;
  /// Big-SCC certification path (components beyond the strategy's
  /// enumeration threshold — exhaustive_cap, or 63 for the structured
  /// strategy's full combination sweep): the component C itself is always
  /// evaluated (κ certification with the connectivity early-exits), then
  /// this many seeded samples of C \ D per removal size up to removal_cap.
  /// The sampling RNG is seeded from the component's member ids
  /// (content-addressed, via src/common/random — cup_lint R2 clean), so
  /// the candidate stream is a pure function of the view.
  std::size_t big_scc_samples = 24;
  /// Reuse candidates of unchanged SCCs and memoized per-S1 splits across
  /// evaluations (see file comment). Results are bit-identical either way.
  bool incremental = true;
  /// Intra-evaluation worker count for direct library use of a strategy:
  /// candidates() installs a WorkPool of this many workers (0 = serial,
  /// the default) unless the run engine already installed one
  /// (Scenario::parallel_eval), which takes precedence. Deliberately
  /// excluded from the strategy cache_key: the thread count must not — and
  /// provably does not — change candidate output (the parallel==serial
  /// property suite replays the corpus at several settings), so it must
  /// not split the candidate caches either.
  std::size_t parallel_eval = 0;

  /// Copy with every field clamped to a safe value (exhaustive_cap <= 63).
  [[nodiscard]] SearchOptions validated() const;
};

class SinkSearch {
 public:
  virtual ~SinkSearch() = default;

  /// Every satisfying (S1, S2, g) derivable from `view` under the strategy's
  /// candidate family.
  [[nodiscard]] virtual std::vector<SinkCandidate> candidates(
      const KnowledgeView& view) const = 0;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Identity of the strategy *and* its parameters — equal keys must mean
  /// equal candidate output for equal views. Keys the per-view candidate
  /// caches and the per-simulation SharedEvalCache.
  [[nodiscard]] virtual const std::string& cache_key() const = 0;
};

class ExhaustiveSinkSearch final : public SinkSearch {
 public:
  explicit ExhaustiveSinkSearch(SearchOptions options = {});

  [[nodiscard]] std::vector<SinkCandidate> candidates(
      const KnowledgeView& view) const override;
  [[nodiscard]] const char* name() const override { return "exhaustive"; }
  [[nodiscard]] const std::string& cache_key() const override {
    return cache_key_;
  }

 private:
  SearchOptions options_;
  std::string cache_key_;
};

class StructuredSinkSearch final : public SinkSearch {
 public:
  explicit StructuredSinkSearch(SearchOptions options = {});

  [[nodiscard]] std::vector<SinkCandidate> candidates(
      const KnowledgeView& view) const override;
  [[nodiscard]] const char* name() const override { return "structured"; }
  [[nodiscard]] const std::string& cache_key() const override {
    return cache_key_;
  }

 private:
  SearchOptions options_;
  std::string cache_key_;
};

/// Convenience: the default strategy used by nodes (exhaustive — every graph
/// in the paper and in the test corpus has small components).
[[nodiscard]] std::unique_ptr<SinkSearch> make_default_search();

/// Components routed through the big-SCC certification path on this thread
/// since the last reset (a simulator runs entirely on one thread;
/// execute_scenario brackets each run with reset + read so RunReport can
/// record the per-run figure). Resetting also re-arms the once-per-run
/// rate limit of the fallback warning.
[[nodiscard]] std::uint64_t big_scc_fallbacks();
void reset_big_scc_fallbacks();

}  // namespace bftcup::protocol

// Candidate enumeration for the Sink (Alg. 2) and Core (Alg. 4) algorithms.
//
// The algorithms as specified quantify existentially over subsets of
// S_received — an exponential search. Two strategies are provided behind one
// interface (DESIGN.md §4.3):
//
//  * ExhaustiveSinkSearch — bitmask enumeration of subsets inside each SCC
//    of the received-knowledge graph (any strongly connected S1 lies inside
//    one SCC). Reference semantics; caps SCC size.
//  * StructuredSinkSearch — candidate S1s are SCCs of the received-knowledge
//    graph plus bounded removals C \ D, |D| <= removal_cap. Polynomial for
//    fixed cap; exploits that satisfying S1s are SCC-shaped (correct sink
//    members are mutually (f+1)-connected, and at most f Byzantine/silent
//    processes perturb the component).
//
// Property tests cross-validate the two on random graphs.
#pragma once

#include <memory>
#include <vector>

#include "protocol/sink_predicate.hpp"

namespace bftcup::protocol {

/// One satisfying assignment of the isSink predicate.
struct SinkCandidate {
  IdSet s1;
  IdSet s2;
  std::size_t g = 0;  ///< fault threshold witnessing this candidate

  [[nodiscard]] IdSet members() const { return s1.set_union(s2); }
};

struct SearchOptions {
  /// Exhaustive strategy: SCCs larger than this are skipped (with a warning)
  /// rather than enumerated.
  std::size_t exhaustive_cap = 16;
  /// Structured strategy: maximum |D| for C \ D candidates.
  std::size_t removal_cap = 3;
};

class SinkSearch {
 public:
  virtual ~SinkSearch() = default;

  /// Every satisfying (S1, S2, g) derivable from `view` under the strategy's
  /// candidate family.
  [[nodiscard]] virtual std::vector<SinkCandidate> candidates(
      const KnowledgeView& view) const = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

class ExhaustiveSinkSearch final : public SinkSearch {
 public:
  explicit ExhaustiveSinkSearch(SearchOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::vector<SinkCandidate> candidates(
      const KnowledgeView& view) const override;
  [[nodiscard]] const char* name() const override { return "exhaustive"; }

 private:
  SearchOptions options_;
};

class StructuredSinkSearch final : public SinkSearch {
 public:
  explicit StructuredSinkSearch(SearchOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::vector<SinkCandidate> candidates(
      const KnowledgeView& view) const override;
  [[nodiscard]] const char* name() const override { return "structured"; }

 private:
  SearchOptions options_;
};

/// Convenience: the default strategy used by nodes (exhaustive — every graph
/// in the paper and in the test corpus has small components).
[[nodiscard]] std::unique_ptr<SinkSearch> make_default_search();

}  // namespace bftcup::protocol

#include "protocol/core.hpp"

#include <map>

#include "protocol/eval_cache.hpp"

namespace bftcup::protocol {

std::optional<CoreResult> try_find_core(const KnowledgeView& view,
                                        const SinkSearch& search) {
  const std::vector<SinkCandidate> candidates = search.candidates(view);
  if (candidates.empty()) return std::nullopt;

  // Aggregate: per member-set, the maximal witness g (= f_Gdi within current
  // knowledge) and a witnessing split.
  struct Entry {
    std::size_t g = 0;
    const SinkCandidate* witness = nullptr;
  };
  std::map<IdSet, Entry> sinks;
  for (const SinkCandidate& c : candidates) {
    Entry& e = sinks[c.members()];
    if (e.witness == nullptr || c.g > e.g) {
      e.g = c.g;
      e.witness = &c;
    }
  }

  // The connectivity maximum...
  auto best = sinks.begin();
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (it->second.g > best->second.g) best = it;
  }
  const std::size_t best_g = best->second.g;

  // ... must be strict (property C1): a tie means this knowledge cannot yet
  // distinguish the core, so keep waiting.
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (it != best && it->second.g == best_g) return std::nullopt;
  }

  // Theorem 8(b): no proper subset passes isSink* with k >= k(candidate).
  // (Within the candidate family; the exhaustive strategy makes this exact.)
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (it == best) continue;
    if (it->second.g >= best_g && it->first.is_subset_of(best->first) &&
        it->first.size() < best->first.size()) {
      return std::nullopt;
    }
  }

  CoreResult result;
  result.members = best->first;
  result.g = best_g;
  result.s1 = best->second.witness->s1;
  result.s2 = best->second.witness->s2;
  return result;
}

std::optional<CoreResult> try_find_core(const KnowledgeView& view,
                                        const SinkSearch& search,
                                        SharedEvalCache* cache) {
  if (cache == nullptr) return try_find_core(view, search);
  ++cache->stats().evaluations;
  if (!cache->memo_enabled()) return try_find_core(view, search);
  // See try_find_sink: churn-phase evaluations skip the digest probe and
  // suspend the view's scratch memos.
  const std::size_t view_size = view.received().size();
  const auto gate = cache->admit(view_size);
  view.eval_scratch().memo_suspended = !gate.keep_scratch;
  if (!gate.probe) return try_find_core(view, search);

  const EvalKeyView key{search.cache_key(), 0, view_canonical(view)};
  if (const auto* hit = cache->find_core(key)) {
    ++cache->stats().hits;
    cache->record_probe(view_size, /*hit=*/true);
    return *hit;
  }
  cache->record_probe(view_size, /*hit=*/false);
  std::optional<CoreResult> result = try_find_core(view, search);
  cache->store_core(key, result);
  return result;
}

}  // namespace bftcup::protocol

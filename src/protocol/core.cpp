#include "protocol/core.hpp"

#include <map>

namespace bftcup::protocol {

std::optional<CoreResult> try_find_core(const KnowledgeView& view,
                                        const SinkSearch& search) {
  const std::vector<SinkCandidate> candidates = search.candidates(view);
  if (candidates.empty()) return std::nullopt;

  // Aggregate: per member-set, the maximal witness g (= f_Gdi within current
  // knowledge) and a witnessing split.
  struct Entry {
    std::size_t g = 0;
    const SinkCandidate* witness = nullptr;
  };
  std::map<IdSet, Entry> sinks;
  for (const SinkCandidate& c : candidates) {
    Entry& e = sinks[c.members()];
    if (e.witness == nullptr || c.g > e.g) {
      e.g = c.g;
      e.witness = &c;
    }
  }

  // The connectivity maximum...
  auto best = sinks.begin();
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (it->second.g > best->second.g) best = it;
  }
  const std::size_t best_g = best->second.g;

  // ... must be strict (property C1): a tie means this knowledge cannot yet
  // distinguish the core, so keep waiting.
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (it != best && it->second.g == best_g) return std::nullopt;
  }

  // Theorem 8(b): no proper subset passes isSink* with k >= k(candidate).
  // (Within the candidate family; the exhaustive strategy makes this exact.)
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (it == best) continue;
    if (it->second.g >= best_g && it->first.is_subset_of(best->first) &&
        it->first.size() < best->first.size()) {
      return std::nullopt;
    }
  }

  CoreResult result;
  result.members = best->first;
  result.g = best_g;
  result.s1 = best->second.witness->s1;
  result.s2 = best->second.witness->s2;
  return result;
}

}  // namespace bftcup::protocol

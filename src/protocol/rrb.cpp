#include "protocol/rrb.hpp"

#include <algorithm>

#include "graph/digraph.hpp"
#include "graph/connectivity.hpp"

namespace bftcup::protocol {

RrbDiscovery::RrbDiscovery(ProcessId self, IdSet own_pd, std::size_t f,
                           SimTime period)
    : self_(self),
      own_pd_(std::move(own_pd)),
      f_(f),
      period_(period),
      contacts_(own_pd_),
      view_(self, own_pd_) {}

void RrbDiscovery::start(sim::Context& ctx) {
  if (started_) return;
  started_ = true;
  flood_own(ctx);
  ctx.set_timer(period_, kTimerKind);
}

void RrbDiscovery::flood_own(sim::Context& ctx) {
  msg::Message m;
  m.type = msg::MsgType::kRrbForward;
  m.origin = self_;
  m.origin_pd = own_pd_;
  ctx.broadcast(contacts_, msg::MessageRef::make(std::move(m)));
}

void RrbDiscovery::on_timer(sim::Context& ctx) {
  if (!active_) return;
  flood_own(ctx);
  ctx.set_timer(period_, kTimerKind);
}

void RrbDiscovery::forward(const msg::Message& original, sim::Context& ctx) {
  msg::Message m = original;
  m.path.push_back(self_);
  // One frozen copy with the extended path serves every relay target.
  const auto ref = msg::MessageRef::make(std::move(m));
  for (ProcessId next : contacts_) {
    if (next == ref->origin) continue;
    if (std::find(ref->path.begin(), ref->path.end(), next) !=
        ref->path.end()) {
      continue;  // no cycles
    }
    ctx.send(next, ref);
  }
}

std::size_t RrbDiscovery::disjoint_path_strength(
    ProcessId origin, const std::vector<std::vector<ProcessId>>& paths) {
  ++path_checks_;
  // Menger on the evidence subgraph: union all relay paths into a digraph
  // origin -> ... -> self and count internally node-disjoint paths.
  graph::Digraph evidence;
  evidence.add_vertex(origin);
  evidence.add_vertex(self_);
  for (const auto& path : paths) {
    ProcessId prev = origin;
    for (ProcessId hop : path) {
      evidence.add_edge(prev, hop);
      prev = hop;
    }
    evidence.add_edge(prev, self_);
  }
  return graph::disjoint_path_count(evidence, origin, self_);
}

bool RrbDiscovery::handle_message(ProcessId from, const msg::Message& message,
                                  sim::Context& ctx) {
  if (message.type != msg::MsgType::kRrbForward) return false;
  contacts_.insert(from);  // bidirectional channels: we can answer/relay back

  if (message.origin == self_) return false;
  // The last hop must be the actual sender (the network authenticates point-
  // to-point links even without signatures).
  if (!message.path.empty() && message.path.back() != from) return false;
  if (message.path.empty() && message.origin != from) return false;
  // A path containing ourselves or the origin is malformed.
  if (std::find(message.path.begin(), message.path.end(), self_) !=
      message.path.end()) {
    return false;
  }

  // Relay-amplification bound: beyond this many distinct paths per
  // (origin, contents) pair, further copies are dropped instead of
  // re-flooded. Keeps worst-case traffic polynomial; > f disjoint paths fit
  // comfortably for every experiment's f.
  constexpr std::size_t kMaxPathsPerOrigin = 24;

  OriginState& state = origins_[message.origin];
  auto& paths = state.paths_by_pd[message.origin_pd];
  // Only a never-seen relay path is recorded and re-forwarded.
  if (paths.size() >= kMaxPathsPerOrigin ||
      std::find(paths.begin(), paths.end(), message.path) != paths.end()) {
    return false;
  }
  paths.push_back(message.path);

  bool newly_delivered = false;
  if (!state.delivered) {
    // Direct receipt from the origin itself counts as one trusted path;
    // otherwise require > f node-disjoint corroborating paths.
    const std::size_t strength =
        message.path.empty() ? f_ + 1
                             : disjoint_path_strength(message.origin, paths);
    if (strength > f_) {
      state.delivered = true;
      view_.add_pd(message.origin, message.origin_pd);
      newly_delivered = true;
    }
  }
  forward(message, ctx);
  return newly_delivered;
}

}  // namespace bftcup::protocol

// The Discovery algorithm (Algorithm 1), authenticated variant.
//
// A reusable component embedded in nodes: periodically asks every known
// process for the signed PDs it has collected (GETPDS), answers such
// requests with its own collection (SETPDS), and merges verified responses
// into a KnowledgeView. Because PDs are signed by their owners, a Byzantine
// process can neither alter a correct process's PD nor fabricate one — it
// can only lie about its *own* PD or stay silent.
#pragma once

#include <vector>

#include "protocol/knowledge_view.hpp"
#include "sim/process.hpp"

namespace bftcup::protocol {

class Discovery {
 public:
  /// Timer kind used for the periodic discovery task.
  static constexpr int kTimerKind = 1;

  /// `scratch_mr` (optional) backs the view's membership-engine memo pads —
  /// the run engine passes its per-run arena here (see KnowledgeView::
  /// use_scratch_resource for the lifetime contract).
  Discovery(ProcessId self, IdSet own_pd, SimTime period,
            std::pmr::memory_resource* scratch_mr = nullptr);

  /// Signs the node's own PD and arms the periodic task (Alg. 1 lines 1-2).
  void start(sim::Context& ctx);

  /// Handles GETPDS / SETPDS. Returns true iff the view changed (the caller
  /// should re-evaluate its sink/core condition). Other message types are
  /// ignored and return false.
  bool handle_message(ProcessId from, const msg::Message& message,
                      sim::Context& ctx);

  /// Periodic task body. Re-arms itself while `active` is true — nodes
  /// clear the flag (stop()) once they no longer need new knowledge, letting
  /// the simulation quiesce. `kind` carries the arming epoch (upper bits);
  /// fires from a superseded chain are ignored, so restart() after a
  /// crash/recovery cannot double the polling rate.
  void on_timer(int kind, sim::Context& ctx);

  /// Re-arms the periodic task after a crash/recovery may have dropped the
  /// pending timer. Supersedes any still-pending timer (epoch bump), polls
  /// immediately, and starts a fresh chain.
  void restart(sim::Context& ctx);

  void stop() { active_ = false; }
  [[nodiscard]] bool active() const { return active_; }

  [[nodiscard]] const KnowledgeView& view() const { return view_; }

  /// S_PD: the verified signed PDs collected so far (own PD included).
  [[nodiscard]] const std::vector<msg::SignedPd>& signed_pds() const {
    return spds_;
  }

  /// Number of GETPDS rounds initiated (metrics).
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

 private:
  void request_all(sim::Context& ctx);
  void arm_timer(sim::Context& ctx);

  ProcessId self_;
  IdSet own_pd_;
  SimTime period_;
  /// Bumped by restart(); stale timer fires are dropped. Stays 0 in
  /// fault-free runs, so the timer kind stays bit-identical to the
  /// pre-fault-timeline implementation.
  std::uint64_t timer_epoch_ = 0;
  KnowledgeView view_;
  std::vector<msg::SignedPd> spds_;
  /// The GETPDS request is identical every round: built once, shared.
  msg::MessageRef request_;
  /// The SETPDS answer is shared across requesters and rebuilt only when
  /// S_PD grows (null = stale).
  msg::MessageRef reply_cache_;
  /// Reused payload buffer for signature checks in the SETPDS merge loop —
  /// one allocation for the node's lifetime instead of one per verify.
  Bytes payload_scratch_;
  bool active_ = true;
  bool started_ = false;
  std::uint64_t rounds_ = 0;
};

}  // namespace bftcup::protocol

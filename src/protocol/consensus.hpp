// Algorithm 3's value exchange (lines 5-10).
//
// Sink/core members serve GETDECIDEDVAL once they have decided (deferred
// replies while val = ⊥). Non-members ask every member and decide once
// ⌈(|S|+1)/2⌉ distinct members report the same value — a majority of S
// contains at least one correct process because |S| >= 2f+1 correct and
// <= f Byzantine members.
#pragma once

#include <map>
#include <optional>

#include "sim/process.hpp"

namespace bftcup::protocol {

class ValueExchange {
 public:
  explicit ValueExchange(ProcessId self) : self_(self) {}

  /// Non-member path (Alg. 3 line 6): ask every member for the decision.
  void request(const IdSet& members, sim::Context& ctx);

  /// Member path: publish our decision; flushes deferred requests.
  void set_local_decision(Value value, sim::Context& ctx);

  /// Handles kGetDecidedVal / kDecidedVal; returns true if consumed.
  bool handle_message(ProcessId from, const msg::Message& message,
                      sim::Context& ctx);

  /// The fetched value once ⌈(|S|+1)/2⌉ identical answers arrived.
  [[nodiscard]] std::optional<Value> fetched() const { return fetched_; }

 private:
  void reply(ProcessId to, sim::Context& ctx);

  ProcessId self_;
  std::optional<Value> local_decision_;
  IdSet pending_;  ///< requesters waiting for val != ⊥

  IdSet asked_members_;
  std::size_t needed_ = 0;
  std::map<Value, IdSet> answers_;
  std::optional<Value> fetched_;
};

}  // namespace bftcup::protocol

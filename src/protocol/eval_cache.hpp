// Memoization layers of the incremental membership engine.
//
// Three tiers, all storing pure functions of immutable inputs (see README
// "Membership engine caching" for the invariants and the proof sketch):
//
//  * EvalScratch — per-KnowledgeView memo pads, attached lazily to a view
//    and owned by it. Holds (a) the admissible-split / κ memos keyed by
//    canonical S1 contents — valid forever because a received S1's splits
//    depend only on its members' PDs, which are immutable, and on known()
//    growth that provably cannot alter them; (b) per-strategy candidate
//    caches keyed by SCC member set — the dirty-SCC mechanism: an SCC whose
//    member set survived the last revision is *clean* and its candidates are
//    reused verbatim, a changed (merged/grown) SCC misses and re-enumerates;
//    (c) the view's canonical content serialization, cached per revision.
//
//  * SharedEvalCache — one per simulation, shared by every correct node.
//    Maps (strategy, parameter, canonical view bytes) to the sink/core search
//    outcome, so nodes whose knowledge states converge — the common case
//    once discovery stabilizes — pay for the exponential search once.
//
//  * crypto::VerifyCache (crypto/verify_cache.hpp) — the signature tier.
//
// Every tier is scoped to one simulator and therefore one thread.
#pragma once

#include <array>
#include <cstring>
#include <map>
#include <memory_resource>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/fnv.hpp"
#include "common/thread_annotations.hpp"
#include "protocol/core.hpp"
#include "protocol/sink.hpp"

namespace bftcup::protocol {

/// Per-view memo pads. Created on demand by KnowledgeView::eval_scratch();
/// never copied between views. Map nodes can be routed through a
/// sim::RunArena (the run engine's per-run bump allocator) so that the
/// memo churn of a short run costs bumps instead of mallocs; the scratch
/// dies with its view, before the arena rewinds.
class EvalScratch {
 public:
  EvalScratch() = default;
  explicit EvalScratch(std::pmr::memory_resource* mr)
      : splits(mr), strategies(mr), probe_words(mr) {}
  struct Stats {
    std::uint64_t scc_hits = 0;    ///< SCCs served from the candidate cache
    std::uint64_t scc_misses = 0;  ///< SCCs (re-)enumerated
    std::uint64_t split_hits = 0;  ///< S1s served from the split memo
    std::uint64_t split_misses = 0;
  };

  /// Per-S1 memo entry: κ(K[S1]) and the admissible splits derived from it.
  /// Both are pure functions of the S1 members' immutable PDs, so entries
  /// are revision-invariant — one connectivity computation per canonical S1
  /// contents for the view's lifetime.
  struct SplitMemo {
    std::size_t kappa = 0;
    std::vector<AdmissibleSplit> splits;
  };
  std::pmr::map<IdSet, SplitMemo> splits;

  /// κ(K[S1]) as memoized for `s1`, or nullopt if that S1 was never costed.
  /// Debug/ablation surface: lets tests and tooling read the connectivity a
  /// search computed without re-running the max-flow.
  [[nodiscard]] std::optional<std::size_t> memoized_kappa(
      const IdSet& s1) const {
    const auto it = splits.find(s1);
    if (it == splits.end()) return std::nullopt;
    return it->second.kappa;
  }

  /// Per-strategy candidate cache: SCC member set -> candidates of every
  /// S1 the strategy derives from that SCC, in enumeration order. Entries
  /// are *two-touch*: the first enumeration of an SCC records only the key
  /// (cheap), the second stores the candidate vector, the third and later
  /// are hits. A view in discovery churn — where an SCC's member set
  /// rarely survives even one revision — therefore never pays the
  /// candidate-vector copy that made incremental mode a net loss on the
  /// discovery benchmark, while a stable view amortizes exactly as before
  /// at the cost of one extra enumeration.
  struct CachedCandidates {
    bool filled = false;  ///< false: SCC seen once, candidates not stored yet
    std::vector<SinkCandidate> candidates;
  };
  struct StrategyCache {
    using allocator_type = std::pmr::polymorphic_allocator<std::byte>;
    StrategyCache() = default;
    explicit StrategyCache(allocator_type alloc) : by_scc(alloc.resource()) {}
    std::uint64_t pruned_revision = ~std::uint64_t{0};
    std::pmr::map<IdSet, CachedCandidates> by_scc;
  };
  std::pmr::map<std::string, StrategyCache> strategies;

  /// Reusable word storage for the adaptive membership probes
  /// (common/bitset64.hpp) the split computation builds per S1 — transient
  /// per call, arena-backed in pooled runs like the memo maps above.
  std::pmr::vector<std::uint64_t> probe_words;

  /// Canonical content serialization of the owning view, valid while
  /// revisions match (the shared eval cache's key material).
  std::uint64_t canon_revision = ~std::uint64_t{0};
  Bytes canon;

  /// Set per evaluation by the memoized try_find_sink/try_find_core when
  /// the shared cache's probe gate classifies the evaluation as discovery
  /// churn: a churning view re-evaluates nothing, so split/candidate
  /// memoization is pure overhead. While suspended, the search strategies
  /// bypass every memo pad (reads and writes) — results are bit-identical
  /// either way, the memos being pure caches. Cleared again by the first
  /// non-churn evaluation.
  bool memo_suspended = false;

  Stats stats;
};

/// Canonical serialization of the view's content (known set + received
/// PDs, in sorted order with length framing). Serialization equality is
/// view equality — the shared eval cache keys on these bytes directly and
/// compares byte-for-byte on lookup, so a bucket-hash collision degrades
/// to a memcmp, never to a wrong result (and no cryptographic hashing is
/// needed on this hot path at all). Cached in the view's scratch per
/// revision.
[[nodiscard]] const Bytes& view_canonical(const KnowledgeView& view);

/// One entry key of the shared evaluation cache (owning form).
struct EvalKey {
  std::string strategy;     ///< SinkSearch::cache_key()
  std::uint64_t param = 0;  ///< f for the Sink algorithm; unused for Core
  Bytes view;               ///< view_canonical bytes

  friend bool operator==(const EvalKey&, const EvalKey&) = default;
};

/// Borrowed key for allocation-free probes.
struct EvalKeyView {
  std::string_view strategy;
  std::uint64_t param = 0;
  BytesView view;
};

struct EvalKeyHash {
  using is_transparent = void;

  /// FNV-1a (common/fnv.hpp). Bucketing only; equality is a byte compare.
  std::size_t operator()(const EvalKey& k) const {
    std::size_t h = fnv1a_mix(kFnvOffsetBasis, k.strategy.data(),
                              k.strategy.size());
    h = fnv1a_mix_u64(h, k.param);
    return fnv1a_mix(h, k.view.data(), k.view.size());
  }
  std::size_t operator()(const EvalKeyView& k) const {
    std::size_t h = fnv1a_mix(kFnvOffsetBasis, k.strategy.data(),
                              k.strategy.size());
    h = fnv1a_mix_u64(h, k.param);
    return fnv1a_mix(h, k.view.data(), k.view.size());
  }
};

struct EvalKeyEq {
  using is_transparent = void;

  bool operator()(const EvalKey& a, const EvalKey& b) const { return a == b; }
  bool operator()(const EvalKeyView& a, const EvalKey& b) const {
    return a.param == b.param && a.strategy == b.strategy &&
           a.view.size() == b.view.size() &&
           (a.view.empty() ||
            std::memcmp(a.view.data(), b.view.data(), a.view.size()) == 0);
  }
  bool operator()(const EvalKey& a, const EvalKeyView& b) const {
    return operator()(b, a);
  }
};

/// Per-simulation-thread evaluation memo; see file comment. With the memo
/// disabled it still counts evaluations, so reports can show search effort
/// either way.
///
/// Results are pure functions of their content-addressed keys, so a
/// recycled run context keeps one SharedEvalCache across *all* of its runs:
/// the converged views of a topology family are identical from run to run
/// regardless of seed, which turns the exponential candidate search into a
/// digest lookup for the steady state of a batch sweep. Toggle per run with
/// set_memo_enabled; per-run counters are deltas against a stats snapshot.
///
/// Probing is gated adaptively: hashing a whole view per evaluation is a
/// net loss while discovery churns (every evaluation sees a brand-new view,
/// so probes cannot hit). The gate buckets views by log2(|S_received|) and
/// stops probing a bucket after `kProbeWarmup` consecutive missed probes,
/// retrying every `kProbeRetry`-th evaluation so converged or recurring
/// view families re-open their bucket. The gate only decides whether the
/// memo is *consulted* — results are identical either way — and it is a
/// deterministic function of the evaluation history, so replays stay
/// bit-identical.
class BFTCUP_THREAD_CONFINED SharedEvalCache {
 public:
  struct Stats {
    std::uint64_t evaluations = 0;  ///< membership evaluations requested
    std::uint64_t hits = 0;         ///< served from the digest memo
  };

  static constexpr std::uint64_t kProbeWarmup = 3;
  static constexpr std::uint64_t kProbeRetry = 8;

  explicit SharedEvalCache(bool memo_enabled = true)
      : memo_enabled_(memo_enabled) {}

  [[nodiscard]] bool memo_enabled() const { return memo_enabled_; }

  /// Per-run toggle for a recycled cache (ScenarioBuilder::eval_cache).
  /// Retained entries are simply not consulted while disabled.
  void set_memo_enabled(bool enabled) { memo_enabled_ = enabled; }

  /// Gate verdict for one evaluation (see class comment). `probe`: pay for
  /// the canonical view bytes and consult the memo. `keep_scratch`: let the view's
  /// per-eval scratch memos (split/candidate caches) run too — false for
  /// the periodic retry probes of a closed bucket, which only exist to
  /// *detect* recurrence cheaply, not to bet on it.
  struct ProbeDecision {
    bool probe = true;
    bool keep_scratch = true;
  };

  /// Counts the evaluation against its bucket and returns the gate
  /// verdict. Call once per evaluation, before find_sink/find_core.
  [[nodiscard]] ProbeDecision admit(std::size_t view_size);

  /// Feeds the gate the outcome of a probe admitted by admit().
  void record_probe(std::size_t view_size, bool hit);

  [[nodiscard]] const std::optional<SinkResult>* find_sink(
      const EvalKeyView& key) const;
  void store_sink(const EvalKeyView& key, std::optional<SinkResult> result);

  [[nodiscard]] const std::optional<CoreResult>* find_core(
      const EvalKeyView& key) const;
  void store_core(const EvalKeyView& key, std::optional<CoreResult> result);

  /// Entries currently memoized (sink + core results).
  [[nodiscard]] std::size_t entry_count() const {
    return sink_.size() + core_.size();
  }

  /// Drops every memoized result (the recycled engine's cap valve; never
  /// needed for soundness). Gate statistics and counters are kept.
  void clear_entries() {
    sink_.clear();
    core_.clear();
  }

  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Bucket {
    std::uint64_t evals = 0;
    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
  };

  bool memo_enabled_;
  std::unordered_map<EvalKey, std::optional<SinkResult>, EvalKeyHash,
                     EvalKeyEq>
      sink_;
  std::unordered_map<EvalKey, std::optional<CoreResult>, EvalKeyHash,
                     EvalKeyEq>
      core_;
  /// Gate buckets indexed by bit_width(|S_received|): 0..64.
  std::array<Bucket, 65> buckets_{};
  Stats stats_;
};

}  // namespace bftcup::protocol

// Memoization layers of the incremental membership engine.
//
// Three tiers, all storing pure functions of immutable inputs (see README
// "Membership engine caching" for the invariants and the proof sketch):
//
//  * EvalScratch — per-KnowledgeView memo pads, attached lazily to a view
//    and owned by it. Holds (a) the admissible-split / κ memos keyed by
//    canonical S1 contents — valid forever because a received S1's splits
//    depend only on its members' PDs, which are immutable, and on known()
//    growth that provably cannot alter them; (b) per-strategy candidate
//    caches keyed by SCC member set — the dirty-SCC mechanism: an SCC whose
//    member set survived the last revision is *clean* and its candidates are
//    reused verbatim, a changed (merged/grown) SCC misses and re-enumerates;
//    (c) the view's content digest, cached per revision.
//
//  * SharedEvalCache — one per simulation, shared by every correct node.
//    Maps (strategy, parameter, view-content digest) to the sink/core search
//    outcome, so nodes whose knowledge states converge — the common case
//    once discovery stabilizes — pay for the exponential search once.
//
//  * crypto::VerifyCache (crypto/verify_cache.hpp) — the signature tier.
//
// Every tier is scoped to one simulator and therefore one thread.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "crypto/sha256.hpp"
#include "protocol/core.hpp"
#include "protocol/sink.hpp"

namespace bftcup::protocol {

/// Per-view memo pads. Created on demand by KnowledgeView::eval_scratch();
/// never copied between views.
class EvalScratch {
 public:
  struct Stats {
    std::uint64_t scc_hits = 0;    ///< SCCs served from the candidate cache
    std::uint64_t scc_misses = 0;  ///< SCCs (re-)enumerated
    std::uint64_t split_hits = 0;  ///< S1s served from the split memo
    std::uint64_t split_misses = 0;
  };

  /// Per-S1 memo entry: κ(K[S1]) and the admissible splits derived from it.
  /// Both are pure functions of the S1 members' immutable PDs, so entries
  /// are revision-invariant — one connectivity computation per canonical S1
  /// contents for the view's lifetime.
  struct SplitMemo {
    std::size_t kappa = 0;
    std::vector<AdmissibleSplit> splits;
  };
  std::map<IdSet, SplitMemo> splits;

  /// κ(K[S1]) as memoized for `s1`, or nullopt if that S1 was never costed.
  /// Debug/ablation surface: lets tests and tooling read the connectivity a
  /// search computed without re-running the max-flow.
  [[nodiscard]] std::optional<std::size_t> memoized_kappa(
      const IdSet& s1) const {
    const auto it = splits.find(s1);
    if (it == splits.end()) return std::nullopt;
    return it->second.kappa;
  }

  /// Per-strategy candidate cache: SCC member set -> candidates of every
  /// S1 the strategy derives from that SCC, in enumeration order.
  struct StrategyCache {
    std::uint64_t pruned_revision = ~std::uint64_t{0};
    std::map<IdSet, std::vector<SinkCandidate>> by_scc;
  };
  std::map<std::string, StrategyCache> strategies;

  /// Content digest of the owning view, valid while revisions match.
  std::uint64_t digest_revision = ~std::uint64_t{0};
  crypto::Digest digest{};

  Stats stats;
};

/// SHA-256 over the view's canonical content (known set + received PDs).
/// Equal digests imply equal views, hence equal search results for the same
/// strategy. Cached in the view's scratch per revision.
[[nodiscard]] const crypto::Digest& view_digest(const KnowledgeView& view);

/// One entry key of the shared evaluation cache.
struct EvalKey {
  std::string strategy;     ///< SinkSearch::cache_key()
  std::uint64_t param = 0;  ///< f for the Sink algorithm; unused for Core
  crypto::Digest view{};

  friend auto operator<=>(const EvalKey&, const EvalKey&) = default;
};

/// Per-simulation evaluation memo; see file comment. With the memo disabled
/// it still counts evaluations, so reports can show search effort either way.
class SharedEvalCache {
 public:
  struct Stats {
    std::uint64_t evaluations = 0;  ///< membership evaluations requested
    std::uint64_t hits = 0;         ///< served from the digest memo
  };

  explicit SharedEvalCache(bool memo_enabled = true)
      : memo_enabled_(memo_enabled) {}

  [[nodiscard]] bool memo_enabled() const { return memo_enabled_; }

  [[nodiscard]] const std::optional<SinkResult>* find_sink(
      const EvalKey& key) const;
  void store_sink(EvalKey key, std::optional<SinkResult> result);

  [[nodiscard]] const std::optional<CoreResult>* find_core(
      const EvalKey& key) const;
  void store_core(EvalKey key, std::optional<CoreResult> result);

  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  bool memo_enabled_;
  std::map<EvalKey, std::optional<SinkResult>> sink_;
  std::map<EvalKey, std::optional<CoreResult>> core_;
  Stats stats_;
};

}  // namespace bftcup::protocol

// Single-shot signed PBFT-style consensus among a fixed member set.
//
// Algorithm 3 line 4 delegates to "a traditional consensus protocol (e.g.,
// PBFT)" run by the sink/core members. This is that protocol: three phases
// (PRE-PREPARE / PREPARE / COMMIT) plus a view-change sub-protocol, all
// messages signed. Single-shot, so no sequence numbers, checkpoints, or log
// truncation.
//
// Quorums follow the paper (§II-C, citing [11]): a quorum must include at
// least ⌈(|S| + f + 1)/2⌉ members, where S is the discovered sink/core and
// f the (known or discovered) fault threshold. Any two quorums intersect in
// a correct process, and with |S| >= 2f+1 correct members quorums are live.
//
// View-change simplification (documented in DESIGN.md §4.4): NEW-VIEW
// carries the highest PREPARE certificate the new leader collected; a
// replica that prepared (v, x) refuses a conflicting value justified by a
// certificate older than v. This preserves the commit-intersection safety
// argument for the single-shot case without shipping full view-change
// proofs.
#pragma once

#include <map>
#include <optional>

#include "sim/process.hpp"

namespace bftcup::protocol {

class PbftInstance {
 public:
  /// Timer kind used for view timeouts.
  static constexpr int kTimerKind = 2;

  struct Config {
    IdSet members;
    std::size_t assumed_f = 0;    ///< threshold used for quorum sizing
    SimTime base_timeout = 400;   ///< view-0 timeout; doubles per view
  };

  PbftInstance(ProcessId self, Config config);

  /// Proposes `value` and starts view 0.
  void start(Value value, sim::Context& ctx);

  /// Handles PBFT message types; returns true if the message was consumed.
  bool handle_message(ProcessId from, const msg::Message& message,
                      sim::Context& ctx);

  /// View timer; re-arms via view changes until a decision is reached.
  void on_timer(int kind, sim::Context& ctx);

  /// Re-arms the current view's timeout after a crash/recovery dropped it
  /// (timers addressed to a downed process lapse; see FaultTimeline).
  void rearm_view_timer(sim::Context& ctx);

  [[nodiscard]] bool decided() const { return decided_.has_value(); }
  [[nodiscard]] Value decision() const { return *decided_; }
  [[nodiscard]] std::uint32_t view() const { return view_; }
  [[nodiscard]] std::size_t quorum() const { return quorum_; }

 private:
  struct VoteSet {
    // value -> (sender -> signature share). Values are tracked separately:
    // a Byzantine leader may equivocate.
    std::map<Value, std::map<ProcessId, crypto::Signature>> by_value;
  };

  [[nodiscard]] ProcessId leader_of(std::uint32_t view) const;
  [[nodiscard]] bool is_member(ProcessId id) const {
    return config_.members.contains(id);
  }

  void enter_view(std::uint32_t view, sim::Context& ctx);
  void arm_view_timer(std::uint32_t view, sim::Context& ctx);
  void broadcast_phase(msg::MsgType phase, std::uint32_t view, Value value,
                       sim::Context& ctx);
  void record_vote(msg::MsgType phase, std::uint32_t view, Value value,
                   ProcessId from, const crypto::Signature& sig,
                   sim::Context& ctx);
  void maybe_progress(std::uint32_t view, Value value, sim::Context& ctx);
  void start_view_change(std::uint32_t target_view, sim::Context& ctx);
  void maybe_assume_leadership(std::uint32_t view, sim::Context& ctx);
  [[nodiscard]] bool verify_cert(const msg::QuorumCert& cert,
                                 msg::MsgType phase, sim::Context& ctx) const;
  void decide_with_cert(Value value, msg::QuorumCert cert, sim::Context& ctx);

  ProcessId self_;
  Config config_;
  std::size_t quorum_ = 0;

  Value proposal_ = kNoValue;
  std::uint32_t view_ = 0;
  std::uint32_t highest_requested_ = 0;  ///< highest view we asked for
  bool started_ = false;
  std::uint64_t timer_epoch_ = 0;  ///< invalidates stale timers

  // Per (view): accepted pre-prepare value.
  std::map<std::uint32_t, Value> preprepared_;
  std::map<std::uint32_t, VoteSet> prepares_;
  std::map<std::uint32_t, VoteSet> commits_;
  std::map<std::uint32_t, bool> prepare_sent_;
  std::map<std::uint32_t, bool> commit_sent_;

  /// Highest certificate this replica assembled from q PREPAREs.
  std::optional<msg::QuorumCert> prepared_cert_;

  // View-change bookkeeping: target view -> sender -> carried certificate.
  std::map<std::uint32_t, std::map<ProcessId, std::optional<msg::QuorumCert>>>
      view_changes_;
  std::map<std::uint32_t, bool> view_change_sent_;
  std::map<std::uint32_t, bool> new_view_sent_;

  std::optional<Value> decided_;
  std::optional<msg::QuorumCert> decide_cert_;
};

}  // namespace bftcup::protocol

// The isSink predicate (Theorem 3 / Algorithm 2 line 1) and its unknown-f
// closure isSink* (Section V).
//
// Erratum handling (see DESIGN.md §4.1): Algorithm 2 as printed checks
// `S1 ≤f→ S_known \ S1`, which is contradicted by the paper's own worked
// example (Fig. 1b, S1={1,3,4}, S2={2}, f=1: two members of S1 point to 2).
// We implement the reading consistent with Theorem 3's proof and the
// example: S2 is computed first (P4), then at most f members of S1 may have
// out-edges escaping S1 ∪ S2 (P3).
#pragma once

#include <optional>

#include "protocol/knowledge_view.hpp"

namespace bftcup::protocol {

/// Evaluates isSink(f, S1, ·) against `view`, deriving S2.
/// Returns the derived S2 when all of Theorem 3's properties hold:
///   P1: |S1| >= 2f+1 and S1 ⊆ S_received,
///   P2: κ(K[S1]) >= f+1,
///   P4: S2 = { j ∈ S_known \ S1 : |{i ∈ S1 : j ∈ PD_i}| > f },
///   P3: |{i ∈ S1 : PD_i escapes S1 ∪ S2}| <= f.
/// Returns nullopt otherwise.
[[nodiscard]] std::optional<IdSet> is_sink(const KnowledgeView& view,
                                           std::size_t f, const IdSet& s1);

/// The paper's exact signature: isSink(f, S1, S2) — true iff the derived S2
/// equals the given one and all properties hold.
[[nodiscard]] bool is_sink(const KnowledgeView& view, std::size_t f,
                           const IdSet& s1, const IdSet& s2);

/// isSink*(S) (Section V): true iff ∃g >= 0 and a split S = S1 ∪ S2 with
/// isSink(g, S1, S2). Returns f_Gdi(S) — the *maximum* such g — or nullopt.
/// k_Gdi(S) is then f_Gdi(S) + 1.
///
/// Exhaustive over S1 ⊆ S ∩ S_received; |S ∩ S_received| must be <= 24
/// (asserted) — ample for sink components, which are small by design.
[[nodiscard]] std::optional<std::size_t> is_sink_star(
    const KnowledgeView& view, const IdSet& s);

/// All admissible fault thresholds g for a fixed S1 (ascending), with the S2
/// derived for each. Shared by the search strategies: for one S1, κ is
/// computed once and every g in [0, κ-1] is tested cheaply.
struct AdmissibleSplit {
  std::size_t g;
  IdSet s2;

  friend bool operator==(const AdmissibleSplit&,
                         const AdmissibleSplit&) = default;
};
[[nodiscard]] std::vector<AdmissibleSplit> admissible_thresholds(
    const KnowledgeView& view, const IdSet& s1);

/// Memoized variant backed by the view's EvalScratch: splits (and κ) for an
/// all-received S1 are pure functions of its members' immutable PDs, so the
/// memo never needs invalidation — later add_pd calls provably cannot change
/// them (README "Membership engine caching"). Returns a reference into the
/// memo; an S1 that is not fully received is answered cold and not stored.
[[nodiscard]] const std::vector<AdmissibleSplit>& admissible_thresholds_memo(
    const KnowledgeView& view, const IdSet& s1, EvalScratch& scratch);

/// Worker-pad form of admissible_thresholds_memo for the parallel SCC
/// fan-out (common/work_pool.hpp): reads `shared` — the view's memo, frozen
/// for the duration of a dispatch — first, then `local` (the worker's own
/// pad); misses are computed into `local`, never into `shared`. The caller
/// merges the pads back into the view memo after the join, in worker-index
/// order. With `shared == nullptr` and `local` = the view's scratch this is
/// exactly admissible_thresholds_memo (the serial path delegates here).
[[nodiscard]] const std::vector<AdmissibleSplit>& admissible_thresholds_padded(
    const KnowledgeView& view, const IdSet& s1, const EvalScratch* shared,
    EvalScratch& local);

}  // namespace bftcup::protocol

#include "protocol/knowledge_view.hpp"

#include "common/bitset64.hpp"
#include "protocol/eval_cache.hpp"

namespace bftcup::protocol {

// Out of line: EvalScratch is incomplete in the header.
KnowledgeView::KnowledgeView() = default;
KnowledgeView::KnowledgeView(KnowledgeView&&) noexcept = default;
KnowledgeView& KnowledgeView::operator=(KnowledgeView&&) noexcept = default;
KnowledgeView::~KnowledgeView() = default;

KnowledgeView::KnowledgeView(const KnowledgeView& other)
    : known_(other.known_),
      received_(other.received_),
      pds_(other.pds_),
      revision_(other.revision_) {}

KnowledgeView& KnowledgeView::operator=(const KnowledgeView& other) {
  if (this == &other) return *this;
  known_ = other.known_;
  received_ = other.received_;
  pds_ = other.pds_;
  revision_ = other.revision_;
  // Content may have changed entirely; drop the derived state rather than
  // inherit the source's (copies may diverge — see header).
  snapshot_revision_ = kNoRevision;
  snapshot_ = SccSnapshot{};
  scratch_.reset();
  return *this;
}

KnowledgeView::KnowledgeView(ProcessId self, const IdSet& own_pd) {
  known_.insert(self);
  known_.insert_all(own_pd);
  add_pd(self, own_pd);
}

bool KnowledgeView::add_pd(ProcessId owner, const IdSet& pd) {
  bool changed = known_.insert(owner);
  changed |= known_.insert_all(pd) > 0;
  if (!pds_.contains(owner)) {
    pds_.emplace(owner, pd);
    received_.insert(owner);
    changed = true;
  }
  if (changed) ++revision_;
  return changed;
}

bool KnowledgeView::add_known(ProcessId id) {
  const bool changed = known_.insert(id);
  if (changed) ++revision_;
  return changed;
}

const IdSet* KnowledgeView::pd_of(ProcessId owner) const {
  auto it = pds_.find(owner);
  return it == pds_.end() ? nullptr : &it->second;
}

graph::Digraph KnowledgeView::knowledge_graph() const {
  graph::Digraph g;
  for (ProcessId id : known_) g.add_vertex(id);
  for (const auto& [owner, pd] : pds_) {
    for (ProcessId target : pd) g.add_edge(owner, target);
  }
  return g;
}

const KnowledgeView::SccSnapshot& KnowledgeView::received_scc_snapshot() const {
  if (snapshot_revision_ != revision_) {
    snapshot_.received_graph = knowledge_graph().induced(received_);
    snapshot_.sccs = graph::strongly_connected_components(snapshot_.received_graph);
    snapshot_revision_ = revision_;
  }
  return snapshot_;
}

EvalScratch& KnowledgeView::eval_scratch() const {
  if (!scratch_) {
    scratch_ = scratch_mr_ != nullptr
                   ? std::make_unique<EvalScratch>(scratch_mr_)
                   : std::make_unique<EvalScratch>();
  }
  return *scratch_;
}

std::size_t KnowledgeView::out_reach_count(const IdSet& s1,
                                           const IdSet& targets) const {
  // |S1| · |PD| membership tests against `targets`; adaptive probe keeps
  // the quorum check linear-ish for large target sets.
  const AdaptiveIdProbe probe(targets);
  std::size_t count = 0;
  for (ProcessId i : s1) {
    const IdSet* pd = pd_of(i);
    if (pd == nullptr) continue;
    for (ProcessId t : *pd) {
      if (probe.contains(t)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::size_t KnowledgeView::in_degree_from(const IdSet& s1,
                                          ProcessId target) const {
  std::size_t count = 0;
  for (ProcessId i : s1) {
    const IdSet* pd = pd_of(i);
    if (pd != nullptr && pd->contains(target)) ++count;
  }
  return count;
}

KnowledgeView KnowledgeView::omniscient(const graph::Digraph& g) {
  KnowledgeView view;
  const IdSet vertices = g.vertices();
  view.known_ = vertices;
  for (ProcessId id : vertices) {
    view.received_.insert(id);
    view.pds_.emplace(id, g.out_neighbors(id));
  }
  ++view.revision_;
  return view;
}

}  // namespace bftcup::protocol

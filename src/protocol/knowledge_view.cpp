#include "protocol/knowledge_view.hpp"

namespace bftcup::protocol {

KnowledgeView::KnowledgeView(ProcessId self, const IdSet& own_pd) {
  known_.insert(self);
  known_.insert_all(own_pd);
  add_pd(self, own_pd);
}

bool KnowledgeView::add_pd(ProcessId owner, const IdSet& pd) {
  bool changed = known_.insert(owner);
  changed |= known_.insert_all(pd) > 0;
  if (!pds_.contains(owner)) {
    pds_.emplace(owner, pd);
    received_.insert(owner);
    changed = true;
  }
  return changed;
}

bool KnowledgeView::add_known(ProcessId id) {
  return known_.insert(id);
}

const IdSet* KnowledgeView::pd_of(ProcessId owner) const {
  auto it = pds_.find(owner);
  return it == pds_.end() ? nullptr : &it->second;
}

graph::Digraph KnowledgeView::knowledge_graph() const {
  graph::Digraph g;
  for (ProcessId id : known_) g.add_vertex(id);
  for (const auto& [owner, pd] : pds_) {
    for (ProcessId target : pd) g.add_edge(owner, target);
  }
  return g;
}

std::size_t KnowledgeView::out_reach_count(const IdSet& s1,
                                           const IdSet& targets) const {
  std::size_t count = 0;
  for (ProcessId i : s1) {
    const IdSet* pd = pd_of(i);
    if (pd == nullptr) continue;
    for (ProcessId t : *pd) {
      if (targets.contains(t)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::size_t KnowledgeView::in_degree_from(const IdSet& s1,
                                          ProcessId target) const {
  std::size_t count = 0;
  for (ProcessId i : s1) {
    const IdSet* pd = pd_of(i);
    if (pd != nullptr && pd->contains(target)) ++count;
  }
  return count;
}

KnowledgeView KnowledgeView::omniscient(const graph::Digraph& g) {
  KnowledgeView view;
  const IdSet vertices = g.vertices();
  view.known_ = vertices;
  for (ProcessId id : vertices) {
    view.received_.insert(id);
    view.pds_.emplace(id, g.out_neighbors(id));
  }
  return view;
}

}  // namespace bftcup::protocol

#include "protocol/sink.hpp"

namespace bftcup::protocol {

std::optional<SinkResult> try_find_sink(const KnowledgeView& view,
                                        std::size_t f,
                                        const SinkSearch& search) {
  for (const SinkCandidate& c : search.candidates(view)) {
    if (c.g != f) continue;  // Alg. 2 line 3 instantiates the predicate at f
    SinkResult result;
    result.members = c.members();
    result.s1 = c.s1;
    result.s2 = c.s2;
    return result;
  }
  return std::nullopt;
}

}  // namespace bftcup::protocol

#include "protocol/sink.hpp"

#include "protocol/eval_cache.hpp"

namespace bftcup::protocol {

std::optional<SinkResult> try_find_sink(const KnowledgeView& view,
                                        std::size_t f,
                                        const SinkSearch& search) {
  for (const SinkCandidate& c : search.candidates(view)) {
    if (c.g != f) continue;  // Alg. 2 line 3 instantiates the predicate at f
    SinkResult result;
    result.members = c.members();
    result.s1 = c.s1;
    result.s2 = c.s2;
    return result;
  }
  return std::nullopt;
}

std::optional<SinkResult> try_find_sink(const KnowledgeView& view,
                                        std::size_t f, const SinkSearch& search,
                                        SharedEvalCache* cache) {
  if (cache == nullptr) return try_find_sink(view, f, search);
  ++cache->stats().evaluations;
  if (!cache->memo_enabled()) return try_find_sink(view, f, search);
  // The probe gate skips the whole-view canonicalization while churn makes
  // hits impossible (see SharedEvalCache); gated and retry evaluations
  // also suspend the view's scratch memos and run the plain search — the
  // result is identical either way.
  const std::size_t view_size = view.received().size();
  const auto gate = cache->admit(view_size);
  view.eval_scratch().memo_suspended = !gate.keep_scratch;
  if (!gate.probe) return try_find_sink(view, f, search);

  const EvalKeyView key{search.cache_key(), f, view_canonical(view)};
  if (const auto* hit = cache->find_sink(key)) {
    ++cache->stats().hits;
    cache->record_probe(view_size, /*hit=*/true);
    return *hit;
  }
  cache->record_probe(view_size, /*hit=*/false);
  std::optional<SinkResult> result = try_find_sink(view, f, search);
  cache->store_sink(key, result);
  return result;
}

}  // namespace bftcup::protocol

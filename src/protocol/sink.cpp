#include "protocol/sink.hpp"

#include "protocol/eval_cache.hpp"

namespace bftcup::protocol {

std::optional<SinkResult> try_find_sink(const KnowledgeView& view,
                                        std::size_t f,
                                        const SinkSearch& search) {
  for (const SinkCandidate& c : search.candidates(view)) {
    if (c.g != f) continue;  // Alg. 2 line 3 instantiates the predicate at f
    SinkResult result;
    result.members = c.members();
    result.s1 = c.s1;
    result.s2 = c.s2;
    return result;
  }
  return std::nullopt;
}

std::optional<SinkResult> try_find_sink(const KnowledgeView& view,
                                        std::size_t f, const SinkSearch& search,
                                        SharedEvalCache* cache) {
  if (cache == nullptr) return try_find_sink(view, f, search);
  ++cache->stats().evaluations;
  if (!cache->memo_enabled()) return try_find_sink(view, f, search);

  EvalKey key{search.cache_key(), f, view_digest(view)};
  if (const auto* hit = cache->find_sink(key)) {
    ++cache->stats().hits;
    return *hit;
  }
  std::optional<SinkResult> result = try_find_sink(view, f, search);
  cache->store_sink(std::move(key), result);
  return result;
}

}  // namespace bftcup::protocol

#include "protocol/discovery.hpp"

#include "obs/span_tracer.hpp"
#include "protocol/timer_epoch.hpp"

namespace bftcup::protocol {

Discovery::Discovery(ProcessId self, IdSet own_pd, SimTime period,
                     std::pmr::memory_resource* scratch_mr)
    : self_(self),
      own_pd_(std::move(own_pd)),
      period_(period),
      view_(self, own_pd_) {
  if (scratch_mr != nullptr) view_.use_scratch_resource(scratch_mr);
}

void Discovery::start(sim::Context& ctx) {
  if (started_) return;
  started_ = true;
  // Line 1: S_PD = { ⟨i, PD_i⟩_i }.
  msg::SignedPd own;
  own.owner = self_;
  own.pd = own_pd_;
  const Bytes payload = msg::SignedPd::payload(self_, own_pd_);
  own.sig = ctx.signer().sign(payload);
  spds_.push_back(std::move(own));

  // Line 2: periodically poll everyone we know.
  request_all(ctx);
  arm_timer(ctx);
}

void Discovery::arm_timer(sim::Context& ctx) {
  ctx.set_timer(period_, encode_timer_kind(kTimerKind, timer_epoch_));
}

void Discovery::request_all(sim::Context& ctx) {
  ++rounds_;
  const obs::ScopedSpan span("discovery.round", rounds_);
  if (!request_) {
    msg::Message req;
    req.type = msg::MsgType::kGetPds;
    request_ = msg::MessageRef::make(std::move(req));
  }
  ctx.broadcast(view_.known(), request_);
}

void Discovery::on_timer(int kind, sim::Context& ctx) {
  if (!active_) return;
  if (!timer_epoch_matches(kind, timer_epoch_)) {
    return;  // a restart() superseded this chain
  }
  request_all(ctx);
  arm_timer(ctx);
}

void Discovery::restart(sim::Context& ctx) {
  if (!active_ || !started_) return;
  ++timer_epoch_;
  request_all(ctx);
  arm_timer(ctx);
}

bool Discovery::handle_message(ProcessId from, const msg::Message& message,
                               sim::Context& ctx) {
  switch (message.type) {
    case msg::MsgType::kGetPds: {
      // Line 3: answer with S_PD. The answer is the same for every
      // requester until S_PD grows, so one frozen payload serves them all.
      if (!reply_cache_) {
        msg::Message reply;
        reply.type = msg::MsgType::kSetPds;
        reply.pds = spds_;
        reply_cache_ = msg::MessageRef::make(std::move(reply));
      }
      ctx.send(from, reply_cache_);
      return false;
    }
    case msg::MsgType::kSetPds: {
      // Lines 4-6: merge every *valid* signed PD.
      bool changed = false;
      for (const msg::SignedPd& spd : message.pds) {
        if (view_.pd_of(spd.owner) != nullptr) continue;  // already have it
        msg::SignedPd::payload_into(spd.owner, spd.pd, payload_scratch_);
        if (!ctx.verifier().verify(spd.owner, payload_scratch_, spd.sig)) {
          continue;  // forged or corrupted — ignore
        }
        view_.add_pd(spd.owner, spd.pd);
        spds_.push_back(spd);
        reply_cache_ = msg::MessageRef();  // S_PD grew; rebuild on demand
        changed = true;
      }
      return changed;
    }
    default:
      return false;
  }
}

}  // namespace bftcup::protocol

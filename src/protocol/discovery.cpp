#include "protocol/discovery.hpp"

namespace bftcup::protocol {

Discovery::Discovery(ProcessId self, IdSet own_pd, SimTime period)
    : self_(self),
      own_pd_(std::move(own_pd)),
      period_(period),
      view_(self, own_pd_) {}

void Discovery::start(sim::Context& ctx) {
  if (started_) return;
  started_ = true;
  // Line 1: S_PD = { ⟨i, PD_i⟩_i }.
  msg::SignedPd own;
  own.owner = self_;
  own.pd = own_pd_;
  const Bytes payload = msg::SignedPd::payload(self_, own_pd_);
  own.sig = ctx.signer().sign(payload);
  spds_.push_back(std::move(own));

  // Line 2: periodically poll everyone we know.
  request_all(ctx);
  ctx.set_timer(period_, kTimerKind);
}

void Discovery::request_all(sim::Context& ctx) {
  ++rounds_;
  msg::Message req;
  req.type = msg::MsgType::kGetPds;
  ctx.broadcast(view_.known(), req);
}

void Discovery::on_timer(sim::Context& ctx) {
  if (!active_) return;
  request_all(ctx);
  ctx.set_timer(period_, kTimerKind);
}

bool Discovery::handle_message(ProcessId from, const msg::Message& message,
                               sim::Context& ctx) {
  switch (message.type) {
    case msg::MsgType::kGetPds: {
      // Line 3: answer with S_PD.
      msg::Message reply;
      reply.type = msg::MsgType::kSetPds;
      reply.pds = spds_;
      ctx.send(from, std::move(reply));
      return false;
    }
    case msg::MsgType::kSetPds: {
      // Lines 4-6: merge every *valid* signed PD.
      bool changed = false;
      for (const msg::SignedPd& spd : message.pds) {
        if (view_.pd_of(spd.owner) != nullptr) continue;  // already have it
        const Bytes payload = msg::SignedPd::payload(spd.owner, spd.pd);
        if (!ctx.verifier().verify(spd.owner, payload, spd.sig)) {
          continue;  // forged or corrupted — ignore
        }
        view_.add_pd(spd.owner, spd.pd);
        spds_.push_back(spd);
        changed = true;
      }
      return changed;
    }
    default:
      return false;
  }
}

}  // namespace bftcup::protocol

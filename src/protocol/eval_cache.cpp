#include "protocol/eval_cache.hpp"

namespace bftcup::protocol {
namespace {

void hash_id_set(crypto::Sha256& hasher, const IdSet& ids) {
  crypto::sha256_update_u64(hasher, ids.size());
  for (ProcessId id : ids) crypto::sha256_update_u64(hasher, id.raw());
}

}  // namespace

const crypto::Digest& view_digest(const KnowledgeView& view) {
  EvalScratch& scratch = view.eval_scratch();
  if (scratch.digest_revision != view.revision()) {
    crypto::Sha256 hasher;
    static constexpr std::uint8_t kDomain[] = {'v', 'i', 'e', 'w'};
    hasher.update(BytesView(kDomain, sizeof(kDomain)));
    hash_id_set(hasher, view.known());
    crypto::sha256_update_u64(hasher, view.pds().size());
    for (const auto& [owner, pd] : view.pds()) {
      crypto::sha256_update_u64(hasher, owner.raw());
      hash_id_set(hasher, pd);
    }
    scratch.digest = hasher.finalize();
    scratch.digest_revision = view.revision();
  }
  return scratch.digest;
}

const std::optional<SinkResult>* SharedEvalCache::find_sink(
    const EvalKey& key) const {
  const auto it = sink_.find(key);
  return it == sink_.end() ? nullptr : &it->second;
}

void SharedEvalCache::store_sink(EvalKey key, std::optional<SinkResult> result) {
  sink_.emplace(std::move(key), std::move(result));
}

const std::optional<CoreResult>* SharedEvalCache::find_core(
    const EvalKey& key) const {
  const auto it = core_.find(key);
  return it == core_.end() ? nullptr : &it->second;
}

void SharedEvalCache::store_core(EvalKey key, std::optional<CoreResult> result) {
  core_.emplace(std::move(key), std::move(result));
}

}  // namespace bftcup::protocol

#include "protocol/eval_cache.hpp"

#include <bit>

#include "obs/span_tracer.hpp"

namespace bftcup::protocol {
namespace {

void append_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void append_id_set(Bytes& out, const IdSet& ids) {
  append_u64(out, ids.size());
  for (ProcessId id : ids) append_u64(out, id.raw());
}

EvalKey own_key(const EvalKeyView& view) {
  EvalKey key;
  key.strategy = view.strategy;
  key.param = view.param;
  key.view.assign(view.view.begin(), view.view.end());
  return key;
}

}  // namespace

const Bytes& view_canonical(const KnowledgeView& view) {
  EvalScratch& scratch = view.eval_scratch();
  if (scratch.canon_revision != view.revision()) {
    Bytes& out = scratch.canon;
    out.clear();
    // Length-framed, sorted-order serialization: injective on view
    // contents, so byte equality is view equality.
    append_id_set(out, view.known());
    append_u64(out, view.pds().size());
    for (const auto& [owner, pd] : view.pds()) {
      append_u64(out, owner.raw());
      append_id_set(out, pd);
    }
    scratch.canon_revision = view.revision();
  }
  return scratch.canon;
}

SharedEvalCache::ProbeDecision SharedEvalCache::admit(std::size_t view_size) {
  Bucket& bucket = buckets_[std::bit_width(view_size)];
  ++bucket.evals;
  // Scratch memos only run where recurrence is *proven* (a digest hit in
  // this bucket); warmup and retry probes are digest-only, so a purely
  // churning workload pays nothing beyond a handful of view hashes.
  if (bucket.hits > 0) return {true, true};
  if (bucket.probes < kProbeWarmup) return {true, false};
  // Closed bucket: a periodic digest-only retry keeps a late-converging or
  // cross-run recurring view family from being locked out forever.
  if (bucket.evals % kProbeRetry == 0) return {true, false};
  return {false, false};
}

void SharedEvalCache::record_probe(std::size_t view_size, bool hit) {
  Bucket& bucket = buckets_[std::bit_width(view_size)];
  ++bucket.probes;
  if (hit) ++bucket.hits;
}

const std::optional<SinkResult>* SharedEvalCache::find_sink(
    const EvalKeyView& key) const {
  // The cache is thread-confined, so the probe runs on the run thread and
  // the span stream is replay-stable at a fixed knob setting.
  const obs::ScopedSpan span("eval.cache_probe");
  const auto it = sink_.find(key);
  return it == sink_.end() ? nullptr : &it->second;
}

void SharedEvalCache::store_sink(const EvalKeyView& key,
                                 std::optional<SinkResult> result) {
  sink_.emplace(own_key(key), std::move(result));
}

const std::optional<CoreResult>* SharedEvalCache::find_core(
    const EvalKeyView& key) const {
  const obs::ScopedSpan span("eval.cache_probe");
  const auto it = core_.find(key);
  return it == core_.end() ? nullptr : &it->second;
}

void SharedEvalCache::store_core(const EvalKeyView& key,
                                 std::optional<CoreResult> result) {
  core_.emplace(own_key(key), std::move(result));
}

}  // namespace bftcup::protocol

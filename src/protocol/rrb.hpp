// Reachable reliable broadcast — the *unauthenticated* baseline.
//
// The original BFT-CUP [10] has no signatures, so a PD is only trusted once
// it arrives over more than f node-disjoint paths (a Byzantine relay can
// corrupt any single path). This module implements that primitive for the
// signed-vs-unsigned ablation (experiment P4): PDs are flooded with an
// explicit relay path, and a receiver accepts an origin's PD once the
// evidence subgraph carries > f internally node-disjoint origin->self paths
// agreeing on the same contents.
#pragma once

#include <map>
#include <vector>

#include "protocol/knowledge_view.hpp"
#include "sim/process.hpp"

namespace bftcup::protocol {

class RrbDiscovery {
 public:
  static constexpr int kTimerKind = 3;

  RrbDiscovery(ProcessId self, IdSet own_pd, std::size_t f, SimTime period);

  /// Floods our own PD and arms periodic re-flooding (lossless channels make
  /// one round sufficient; the period only matters for late joiners).
  void start(sim::Context& ctx);

  /// Handles kRrbForward. Returns true iff a new PD was *delivered*
  /// (accepted over > f disjoint paths).
  bool handle_message(ProcessId from, const msg::Message& message,
                      sim::Context& ctx);

  void on_timer(sim::Context& ctx);
  void stop() { active_ = false; }

  /// View assembled from delivered PDs only.
  [[nodiscard]] const KnowledgeView& view() const { return view_; }

  /// Paths examined per delivery decision (metrics: verification cost).
  [[nodiscard]] std::uint64_t path_checks() const { return path_checks_; }

 private:
  struct OriginState {
    /// Candidate contents -> relay paths over which they arrived
    /// (path = intermediate relays, origin and self excluded).
    std::map<IdSet, std::vector<std::vector<ProcessId>>> paths_by_pd;
    bool delivered = false;
  };

  void flood_own(sim::Context& ctx);
  void forward(const msg::Message& original, sim::Context& ctx);
  [[nodiscard]] std::size_t disjoint_path_strength(
      ProcessId origin, const std::vector<std::vector<ProcessId>>& paths);

  ProcessId self_;
  IdSet own_pd_;
  std::size_t f_;
  SimTime period_;
  bool active_ = true;
  bool started_ = false;

  IdSet contacts_;  ///< own PD plus every process that has messaged us
  std::map<ProcessId, OriginState> origins_;
  KnowledgeView view_;
  std::uint64_t path_checks_ = 0;
};

}  // namespace bftcup::protocol

// A process's local knowledge state, shared by the sink predicate, the
// search strategies, and the Discovery algorithm.
//
// Mirrors Algorithm 1's three sets:
//   S_PD       -> pds() (owner -> PD contents; signatures are checked before
//                 insertion by the caller, so the view stores plain sets)
//   S_known    -> known()
//   S_received -> received() (the keys of pds())
//
// The view is *versioned*: every content change bumps a monotone revision
// counter, and the expensive derived structures the membership engine needs
// — the received-knowledge graph, its SCC decomposition, per-S1 split memos,
// per-SCC candidate caches — are rebuilt lazily and only when the revision
// moved. Two invariants make this sound (see README "Membership engine
// caching"):
//   * PDs are immutable once received (first version wins, mirroring
//     "PD_i always returns the same set"), and
//   * known()/received() grow monotonically.
#pragma once

#include <map>
#include <memory>
#include <memory_resource>
#include <optional>

#include "common/types.hpp"
#include "graph/digraph.hpp"
#include "graph/scc.hpp"

namespace bftcup::protocol {

class EvalScratch;  // protocol/eval_cache.hpp — memo pads for the searches

class KnowledgeView {
 public:
  KnowledgeView();

  /// Initializes the view for process `self` with its own participant
  /// detector output (Alg. 1 line 1).
  KnowledgeView(ProcessId self, const IdSet& own_pd);

  // Copies carry the content but never the memo pads: a copy may diverge
  // (receive different PDs for the same owner), which would poison shared
  // caches. Moves transfer everything.
  KnowledgeView(const KnowledgeView& other);
  KnowledgeView& operator=(const KnowledgeView& other);
  KnowledgeView(KnowledgeView&&) noexcept;
  KnowledgeView& operator=(KnowledgeView&&) noexcept;
  ~KnowledgeView();

  /// Records `owner`'s PD. Returns true if this changed the view (new owner
  /// or — from a Byzantine equivocator — different contents, which the view
  /// rejects by keeping the first version, mirroring "PD_i always returns
  /// the same set"). New ids in `pd` are added to known().
  bool add_pd(ProcessId owner, const IdSet& pd);

  /// Adds a process to S_known without a PD (e.g. learned as a PD member).
  bool add_known(ProcessId id);

  [[nodiscard]] const IdSet& known() const { return known_; }
  [[nodiscard]] const IdSet& received() const { return received_; }
  [[nodiscard]] const std::map<ProcessId, IdSet>& pds() const { return pds_; }
  [[nodiscard]] const IdSet* pd_of(ProcessId owner) const;

  /// Monotone content version: bumped by every mutation that changed the
  /// view. Derived-structure caches key their freshness on it.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  /// The knowledge graph K: vertices = S_known, edges j -> k for every
  /// received PD_j containing k. Only received PDs contribute edges — a
  /// process cannot use out-edges it has not seen evidence for.
  [[nodiscard]] graph::Digraph knowledge_graph() const;

  /// K restricted to S_received plus its SCC decomposition — the structure
  /// every candidate search starts from. Rebuilt lazily at the current
  /// revision and cached; construction matches
  /// knowledge_graph().induced(received()) bit-for-bit, so SCC enumeration
  /// order (and therefore candidate order) is identical to an uncached run.
  struct SccSnapshot {
    graph::Digraph received_graph;
    graph::SccResult sccs;
  };
  [[nodiscard]] const SccSnapshot& received_scc_snapshot() const;

  /// Lazily created memo pads for the membership engine (split/κ memos,
  /// per-SCC candidate caches, content digest). Logically const: everything
  /// stored is a pure function of the view content, so reads through the
  /// scratch can never change an observable result.
  [[nodiscard]] EvalScratch& eval_scratch() const;

  /// Routes the memo pads' node allocations through `mr` (the run engine's
  /// per-run arena). Must be called before the first eval_scratch() use;
  /// the view (and with it the scratch) must be destroyed before the
  /// resource is rewound. Copies deliberately do not inherit the resource —
  /// a copy's lifetime is not tied to the run that owns the arena.
  void use_scratch_resource(std::pmr::memory_resource* mr) {
    scratch_mr_ = mr;
  }

  /// Number of processes in S1 with an out-edge (per received PDs) into
  /// `targets` — the paper's  S1 --k--> targets  count.
  [[nodiscard]] std::size_t out_reach_count(const IdSet& s1,
                                            const IdSet& targets) const;

  /// Number of processes in S1 whose received PD contains `target`.
  [[nodiscard]] std::size_t in_degree_from(const IdSet& s1,
                                           ProcessId target) const;

  /// Omniscient view of a full knowledge connectivity graph: every vertex's
  /// out-neighborhood is its PD. Used by graph-level checkers and tests.
  [[nodiscard]] static KnowledgeView omniscient(const graph::Digraph& g);

 private:
  IdSet known_;
  IdSet received_;
  std::map<ProcessId, IdSet> pds_;
  std::uint64_t revision_ = 0;

  // Lazily maintained derived state. Mutable: rebuilding a cache of a pure
  // function of the content is logically const.
  static constexpr std::uint64_t kNoRevision = ~std::uint64_t{0};
  mutable std::uint64_t snapshot_revision_ = kNoRevision;
  mutable SccSnapshot snapshot_;
  mutable std::unique_ptr<EvalScratch> scratch_;
  std::pmr::memory_resource* scratch_mr_ = nullptr;  ///< null = default heap
};

}  // namespace bftcup::protocol

// A process's local knowledge state, shared by the sink predicate, the
// search strategies, and the Discovery algorithm.
//
// Mirrors Algorithm 1's three sets:
//   S_PD       -> pds() (owner -> PD contents; signatures are checked before
//                 insertion by the caller, so the view stores plain sets)
//   S_known    -> known()
//   S_received -> received() (the keys of pds())
#pragma once

#include <map>
#include <optional>

#include "common/types.hpp"
#include "graph/digraph.hpp"

namespace bftcup::protocol {

class KnowledgeView {
 public:
  KnowledgeView() = default;

  /// Initializes the view for process `self` with its own participant
  /// detector output (Alg. 1 line 1).
  KnowledgeView(ProcessId self, const IdSet& own_pd);

  /// Records `owner`'s PD. Returns true if this changed the view (new owner
  /// or — from a Byzantine equivocator — different contents, which the view
  /// rejects by keeping the first version, mirroring "PD_i always returns
  /// the same set"). New ids in `pd` are added to known().
  bool add_pd(ProcessId owner, const IdSet& pd);

  /// Adds a process to S_known without a PD (e.g. learned as a PD member).
  bool add_known(ProcessId id);

  [[nodiscard]] const IdSet& known() const { return known_; }
  [[nodiscard]] const IdSet& received() const { return received_; }
  [[nodiscard]] const std::map<ProcessId, IdSet>& pds() const { return pds_; }
  [[nodiscard]] const IdSet* pd_of(ProcessId owner) const;

  /// The knowledge graph K: vertices = S_known, edges j -> k for every
  /// received PD_j containing k. Only received PDs contribute edges — a
  /// process cannot use out-edges it has not seen evidence for.
  [[nodiscard]] graph::Digraph knowledge_graph() const;

  /// Number of processes in S1 with an out-edge (per received PDs) into
  /// `targets` — the paper's  S1 --k--> targets  count.
  [[nodiscard]] std::size_t out_reach_count(const IdSet& s1,
                                            const IdSet& targets) const;

  /// Number of processes in S1 whose received PD contains `target`.
  [[nodiscard]] std::size_t in_degree_from(const IdSet& s1,
                                           ProcessId target) const;

  /// Omniscient view of a full knowledge connectivity graph: every vertex's
  /// out-neighborhood is its PD. Used by graph-level checkers and tests.
  [[nodiscard]] static KnowledgeView omniscient(const graph::Digraph& g);

 private:
  IdSet known_;
  IdSet received_;
  std::map<ProcessId, IdSet> pds_;
};

}  // namespace bftcup::protocol

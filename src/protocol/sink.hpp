// The Sink algorithm's termination condition (Algorithm 2, known f).
//
// Algorithm 2 = fork Discovery, then wait until ∃ S1 ⊆ S_received,
// S2 ⊆ S_known \ S1 with isSink(f, S1, S2). Nodes call try_find_sink after
// every knowledge change; a non-nullopt result is the returned sink
// (Theorem 4: S1 ∪ S2 contains all and only the sink members).
#pragma once

#include <optional>

#include "protocol/sink_search.hpp"

namespace bftcup::protocol {

struct SinkResult {
  IdSet members;  ///< S1 ∪ S2
  IdSet s1;
  IdSet s2;
};

class SharedEvalCache;  // protocol/eval_cache.hpp

[[nodiscard]] std::optional<SinkResult> try_find_sink(const KnowledgeView& view,
                                                      std::size_t f,
                                                      const SinkSearch& search);

/// Memoized variant: consults the per-simulation evaluation cache keyed by
/// (strategy, f, canonical view bytes) before running the search, so nodes
/// whose knowledge states converged pay for the candidate search once. The
/// result is a pure function of the key, hence identical with the cache on
/// or off. `cache == nullptr` degrades to the plain overload.
[[nodiscard]] std::optional<SinkResult> try_find_sink(const KnowledgeView& view,
                                                      std::size_t f,
                                                      const SinkSearch& search,
                                                      SharedEvalCache* cache);

}  // namespace bftcup::protocol

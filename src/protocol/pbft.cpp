#include "protocol/pbft.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"
#include "obs/span_tracer.hpp"
#include "protocol/timer_epoch.hpp"

namespace bftcup::protocol {
namespace {

/// Cap on the exponential backoff shift so timeouts stay finite.
constexpr std::uint32_t kMaxBackoffShift = 16;

/// Span-site names for the consensus phases (nullptr = not a PBFT phase
/// worth a span; ScopedSpan treats it as disabled).
const char* pbft_span_name(msg::MsgType type) {
  switch (type) {
    case msg::MsgType::kPbftPrePrepare:
      return "pbft.pre_prepare";
    case msg::MsgType::kPbftPrepare:
      return "pbft.prepare";
    case msg::MsgType::kPbftCommit:
      return "pbft.commit";
    case msg::MsgType::kPbftViewChange:
      return "pbft.view_change";
    case msg::MsgType::kPbftNewView:
      return "pbft.new_view";
    case msg::MsgType::kPbftDecide:
      return "pbft.decide";
    default:
      return nullptr;
  }
}

}  // namespace

PbftInstance::PbftInstance(ProcessId self, Config config)
    : self_(self), config_(std::move(config)) {
  assert(config_.members.contains(self_));
  // ⌈(|S| + f + 1)/2⌉ (paper §II-C).
  quorum_ = (config_.members.size() + config_.assumed_f + 1 + 1) / 2;
}

ProcessId PbftInstance::leader_of(std::uint32_t view) const {
  const auto& ids = config_.members.values();
  return ids[view % ids.size()];
}

void PbftInstance::start(Value value, sim::Context& ctx) {
  assert(!started_);
  started_ = true;
  proposal_ = value;
  enter_view(0, ctx);
}

void PbftInstance::enter_view(std::uint32_t view, sim::Context& ctx) {
  view_ = view;
  highest_requested_ = std::max(highest_requested_, view);
  ++timer_epoch_;
  arm_view_timer(view, ctx);

  if (leader_of(view) == self_ && !new_view_sent_[view] && view == 0) {
    // View 0: the initial leader pre-prepares its own proposal.
    msg::Message m;
    m.type = msg::MsgType::kPbftPrePrepare;
    m.view = view;
    m.value = proposal_;
    m.sig = ctx.signer().sign(msg::pbft_payload(m.type, view, proposal_));
    const auto ref = msg::MessageRef::make(std::move(m));
    ctx.broadcast(config_.members, ref);
    handle_message(self_, *ref, ctx);  // leaders process their own pre-prepare
  }
}

void PbftInstance::broadcast_phase(msg::MsgType phase, std::uint32_t view,
                                   Value value, sim::Context& ctx) {
  msg::Message m;
  m.type = phase;
  m.view = view;
  m.value = value;
  m.sig = ctx.signer().sign(msg::pbft_payload(phase, view, value));
  const auto ref = msg::MessageRef::make(std::move(m));
  ctx.broadcast(config_.members, ref);
  record_vote(phase, view, value, self_, ref->sig, ctx);
}

void PbftInstance::record_vote(msg::MsgType phase, std::uint32_t view,
                               Value value, ProcessId from,
                               const crypto::Signature& sig,
                               sim::Context& ctx) {
  auto& votes = (phase == msg::MsgType::kPbftPrepare ? prepares_ : commits_);
  votes[view].by_value[value].emplace(from, sig);
  maybe_progress(view, value, ctx);
}

void PbftInstance::maybe_progress(std::uint32_t view, Value value,
                                  sim::Context& ctx) {
  if (decided_) return;

  const auto& prep = prepares_[view].by_value[value];
  if (prep.size() >= quorum_) {
    // Prepared(view, value): remember the strongest certificate we can
    // prove — it gates which NEW-VIEW values we may accept later.
    if (!prepared_cert_ || prepared_cert_->view <= view) {
      msg::QuorumCert cert;
      cert.view = view;
      cert.value = value;
      for (const auto& [who, sig] : prep) cert.shares.push_back({who, sig});
      prepared_cert_ = std::move(cert);
    }
    // COMMIT only within the current view. Without this gate, prepares
    // arriving late for a view we already left would make us commit in two
    // views concurrently — two commit quorums for different values can
    // then assemble and split the decision.
    if (view == view_ && !commit_sent_[view]) {
      commit_sent_[view] = true;
      broadcast_phase(msg::MsgType::kPbftCommit, view, value, ctx);
    }
  }

  const auto& comm = commits_[view].by_value[value];
  if (comm.size() >= quorum_) {
    msg::QuorumCert cert;
    cert.view = view;
    cert.value = value;
    for (const auto& [who, sig] : comm) cert.shares.push_back({who, sig});
    decide_with_cert(value, std::move(cert), ctx);
  }
}

void PbftInstance::decide_with_cert(Value value, msg::QuorumCert cert,
                                    sim::Context& ctx) {
  if (decided_) return;
  decided_ = value;
  decide_cert_ = std::move(cert);
  LOG_DEBUG("pbft") << self_ << " decided " << value;
  // Single-shot decision forwarding: replicas that missed the commit quorum
  // (partitioned by an equivocating leader, late joiners) adopt the decision
  // from the certificate instead of waiting for a view change that can never
  // gather a quorum of undecided members.
  msg::Message m;
  m.type = msg::MsgType::kPbftDecide;
  m.view = decide_cert_->view;
  m.value = value;
  m.cert = decide_cert_;
  m.sig = ctx.signer().sign(
      msg::pbft_payload(m.type, decide_cert_->view, value));
  ctx.broadcast(config_.members, msg::MessageRef::make(std::move(m)));
}

bool PbftInstance::verify_cert(const msg::QuorumCert& cert,
                               msg::MsgType phase, sim::Context& ctx) const {
  if (cert.shares.size() < quorum_) return false;
  const Bytes payload = msg::pbft_payload(phase, cert.view, cert.value);
  IdSet seen;
  for (const msg::SigShare& share : cert.shares) {
    if (!config_.members.contains(share.signer)) return false;
    if (!seen.insert(share.signer)) return false;  // duplicate signer
    if (!ctx.verifier().verify(share.signer, payload, share.sig)) return false;
  }
  return true;
}

void PbftInstance::arm_view_timer(std::uint32_t view, sim::Context& ctx) {
  const SimTime timeout =
      config_.base_timeout << std::min<std::uint32_t>(view, kMaxBackoffShift);
  // Timers cannot be cancelled; encode the epoch so stale fires are ignored.
  ctx.set_timer(timeout, encode_timer_kind(kTimerKind, timer_epoch_));
}

void PbftInstance::start_view_change(std::uint32_t target_view,
                                     sim::Context& ctx) {
  if (decided_ || view_change_sent_[target_view]) return;
  view_change_sent_[target_view] = true;
  highest_requested_ = std::max(highest_requested_, target_view);
  // Escalate again if this view change stalls (e.g. Byzantine next leader).
  arm_view_timer(target_view, ctx);

  msg::Message m;
  m.type = msg::MsgType::kPbftViewChange;
  m.view = target_view;
  m.value = prepared_cert_ ? prepared_cert_->value : kNoValue;
  m.cert = prepared_cert_;
  m.sig = ctx.signer().sign(
      msg::pbft_payload(m.type, target_view, m.value));
  ctx.broadcast(config_.members, msg::MessageRef::make(std::move(m)));

  view_changes_[target_view][self_] = prepared_cert_;
  maybe_assume_leadership(target_view, ctx);
}

void PbftInstance::maybe_assume_leadership(std::uint32_t view,
                                           sim::Context& ctx) {
  if (decided_ || leader_of(view) != self_ || new_view_sent_[view]) return;
  const auto& vcs = view_changes_[view];
  if (vcs.size() < quorum_) return;
  new_view_sent_[view] = true;

  // Adopt the value of the highest-view certificate; fall back to our own
  // proposal when nothing was prepared anywhere.
  std::optional<msg::QuorumCert> best;
  for (const auto& [who, cert] : vcs) {
    if (cert && (!best || cert->view > best->view)) best = cert;
  }
  const Value value = best ? best->value : proposal_;

  msg::Message m;
  m.type = msg::MsgType::kPbftNewView;
  m.view = view;
  m.value = value;
  m.cert = best;
  m.sig = ctx.signer().sign(msg::pbft_payload(m.type, view, value));
  const auto ref = msg::MessageRef::make(std::move(m));
  ctx.broadcast(config_.members, ref);
  handle_message(self_, *ref, ctx);
}

bool PbftInstance::handle_message(ProcessId from, const msg::Message& message,
                                  sim::Context& ctx) {
  switch (message.type) {
    case msg::MsgType::kPbftPrePrepare:
    case msg::MsgType::kPbftPrepare:
    case msg::MsgType::kPbftCommit:
    case msg::MsgType::kPbftViewChange:
    case msg::MsgType::kPbftNewView:
    case msg::MsgType::kPbftDecide:
      break;
    default:
      return false;
  }
  if (!started_ || !is_member(from)) return true;

  // All PBFT messages are signed over (type, view, value).
  if (from != self_ &&
      !ctx.verifier().verify(
          from, msg::pbft_payload(message.type, message.view, message.value),
          message.sig)) {
    return true;  // forged — drop
  }

  // One span per handled phase message (sim+wall time over the handler,
  // including any quorum progress it triggers); arg carries the view.
  const obs::ScopedSpan span(pbft_span_name(message.type), message.view);

  switch (message.type) {
    case msg::MsgType::kPbftPrePrepare: {
      if (message.view != view_ || from != leader_of(message.view)) break;
      auto [it, inserted] = preprepared_.emplace(message.view, message.value);
      if (!inserted) break;  // only the first pre-prepare per view counts
      if (!prepare_sent_[message.view]) {
        prepare_sent_[message.view] = true;
        broadcast_phase(msg::MsgType::kPbftPrepare, message.view,
                        message.value, ctx);
      }
      break;
    }
    case msg::MsgType::kPbftPrepare:
      record_vote(msg::MsgType::kPbftPrepare, message.view, message.value,
                  from, message.sig, ctx);
      break;
    case msg::MsgType::kPbftCommit:
      record_vote(msg::MsgType::kPbftCommit, message.view, message.value,
                  from, message.sig, ctx);
      break;
    case msg::MsgType::kPbftViewChange: {
      if (message.view <= view_) break;
      std::optional<msg::QuorumCert> cert = message.cert;
      if (cert && !verify_cert(*cert, msg::MsgType::kPbftPrepare, ctx)) {
        cert.reset();
      }
      view_changes_[message.view][from] = cert;

      // Amplification: f+1 distinct members asking for a higher view proves
      // at least one correct member timed out — join them.
      std::uint32_t best_view = 0;
      for (const auto& [tv, senders] : view_changes_) {
        if (tv > view_ && senders.size() >= config_.assumed_f + 1) {
          best_view = std::max(best_view, tv);
        }
      }
      if (best_view > 0 && !view_change_sent_[best_view]) {
        start_view_change(best_view, ctx);
      }
      maybe_assume_leadership(message.view, ctx);
      break;
    }
    case msg::MsgType::kPbftNewView: {
      if (message.view < view_ || from != leader_of(message.view)) break;
      if (message.cert &&
          !verify_cert(*message.cert, msg::MsgType::kPbftPrepare, ctx)) {
        break;
      }
      // Safety gate: if we prepared x in view v, a conflicting value needs a
      // certificate from view >= v.
      if (prepared_cert_ && message.value != prepared_cert_->value) {
        if (!message.cert || message.cert->view < prepared_cert_->view) break;
      }
      enter_view(message.view, ctx);
      preprepared_[message.view] = message.value;
      if (!prepare_sent_[message.view]) {
        prepare_sent_[message.view] = true;
        broadcast_phase(msg::MsgType::kPbftPrepare, message.view,
                        message.value, ctx);
      }
      break;
    }
    case msg::MsgType::kPbftDecide: {
      if (!message.cert || message.cert->value != message.value) break;
      if (!verify_cert(*message.cert, msg::MsgType::kPbftCommit, ctx)) break;
      decide_with_cert(message.value, *message.cert, ctx);
      break;
    }
    default:
      break;
  }
  return true;
}

void PbftInstance::rearm_view_timer(sim::Context& ctx) {
  if (!started_ || decided_) return;
  // Supersede any pre-crash timer still in flight: if it fires after the
  // recovery it must read as stale, or every recovery would add another
  // live timer chain.
  ++timer_epoch_;
  arm_view_timer(view_, ctx);
}

void PbftInstance::on_timer(int kind, sim::Context& ctx) {
  if ((kind & 0xff) != kTimerKind || decided_ || !started_) return;
  if (!timer_epoch_matches(kind, timer_epoch_)) {
    return;  // stale timer from an old view or a pre-recovery chain
  }
  start_view_change(highest_requested_ + 1, ctx);
}

}  // namespace bftcup::protocol

// The Core algorithm's termination condition (Algorithm 4, unknown f).
//
// Per Theorem 8 (which fixes the g/g' typo in Algorithm 4 line 2), a
// candidate set V is the core iff isSink*(V) holds and no proper subset of V
// passes isSink* with connectivity >= k_Gdi(V). Operationally (property C1)
// we additionally require the candidate to be the *strict* connectivity
// maximum among every sink-candidate derivable from current knowledge:
// settling early on a lower-connectivity sink the process happened to
// discover first is exactly the mistake the extended model exists to
// prevent. See DESIGN.md §4.2.
#pragma once

#include <optional>

#include "protocol/sink_search.hpp"

namespace bftcup::protocol {

struct CoreResult {
  IdSet members;    ///< V_core = S1 ∪ S2
  std::size_t g;    ///< f_Gdi(V_core): max witness threshold
  IdSet s1;
  IdSet s2;

  [[nodiscard]] std::size_t k() const { return g + 1; }
};

class SharedEvalCache;  // protocol/eval_cache.hpp

[[nodiscard]] std::optional<CoreResult> try_find_core(const KnowledgeView& view,
                                                      const SinkSearch& search);

/// Memoized variant keyed by (strategy, canonical view bytes) in the
/// per-simulation evaluation cache; see try_find_sink's cached overload.
[[nodiscard]] std::optional<CoreResult> try_find_core(const KnowledgeView& view,
                                                      const SinkSearch& search,
                                                      SharedEvalCache* cache);

}  // namespace bftcup::protocol

#include "protocol/sink_predicate.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/bitset64.hpp"
#include "common/work_pool.hpp"
#include "graph/connectivity.hpp"
#include "graph/scc.hpp"
#include "protocol/eval_cache.hpp"

namespace bftcup::protocol {
namespace {

/// One counting pass over S1's received PDs, shared by P4 (S2 derivation)
/// and P3 (escape counting) at *every* threshold g — the quadratic
/// re-derive-per-g loop collapses to one O(E log E) pass plus O(|S2|)
/// per threshold:
///  * in_count — every target outside S1 with the number of S1 members
///    pointing at it, ascending by id. S2(g) = {t : count(t) > g} (P4).
///  * escape_min — for each S1 member with at least one outside target,
///    the minimum in-count among those targets, sorted ascending. The
///    member's PD escapes S1 ∪ S2(g) iff one of its outside targets is
///    *not* in S2(g), i.e. iff that minimum is <= g — so the escape count
///    at g (P3) is one upper_bound.
struct OutsideCounts {
  std::vector<std::pair<std::uint64_t, std::size_t>> in_count;
  std::vector<std::size_t> escape_min;
};

/// S1 sizes below this stay serial in outside_counts: a fan-out costs two
/// dispatches plus slot merges, which only amortize on the big-SCC
/// certification path where |S1| is component-sized. Thresholding is pure
/// scheduling — the merged output is identical either way.
constexpr std::size_t kParallelProbeThreshold = 256;

/// Chunked [0, n) dispatch writing into per-chunk slots, merged by chunk
/// index. The returned vector equals the serial concatenation order.
template <typename T, typename Fill>
std::vector<T> chunked_concat(WorkPool& pool, std::size_t n, const Fill& fill) {
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (pool.workers() * 4));
  const std::size_t chunks = (n + chunk - 1) / chunk;
  std::vector<std::vector<T>> slots(chunks);
  pool.run(n, chunk, [&](std::size_t begin, std::size_t end, std::size_t) {
    fill(begin, end, slots[begin / chunk]);
  });
  std::vector<T> merged;
  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  merged.reserve(total);
  for (auto& slot : slots) {
    merged.insert(merged.end(), slot.begin(), slot.end());
  }
  return merged;
}

OutsideCounts outside_counts(const KnowledgeView& view, const IdSet& s1,
                             const AdaptiveIdProbe& s1_probe) {
  OutsideCounts out;
  // The P4 counting pass (every outside target of every member PD) is the
  // one O(Σ|PD_i|) loop of the predicate; for component-sized S1s it is
  // batched per worker. Both passes end in a value sort, so per-chunk
  // slots concatenated in chunk order yield the serial vector exactly —
  // the multiset of contributions is schedule-independent.
  WorkPool* pool = usable_work_pool();
  if (pool != nullptr &&
      (pool->workers() <= 1 || s1.size() < kParallelProbeThreshold)) {
    pool = nullptr;
  }
  const auto& members = s1.values();
  std::vector<std::uint64_t> targets;  // outside targets, with multiplicity
  if (pool != nullptr) {
    targets = chunked_concat<std::uint64_t>(
        *pool, members.size(),
        [&](std::size_t begin, std::size_t end,
            std::vector<std::uint64_t>& slot) {
          for (std::size_t i = begin; i < end; ++i) {
            const IdSet* pd = view.pd_of(members[i]);
            if (pd == nullptr) continue;
            for (ProcessId t : *pd) {
              if (!s1_probe.contains(t)) slot.push_back(t.raw());
            }
          }
        });
  } else {
    for (ProcessId i : s1) {
      const IdSet* pd = view.pd_of(i);
      if (pd == nullptr) continue;
      for (ProcessId t : *pd) {
        if (!s1_probe.contains(t)) targets.push_back(t.raw());
      }
    }
  }
  std::sort(targets.begin(), targets.end());
  for (std::size_t i = 0; i < targets.size();) {
    std::size_t j = i;
    while (j < targets.size() && targets[j] == targets[i]) ++j;
    out.in_count.emplace_back(targets[i], j - i);
    i = j;
  }

  const auto count_of = [&](std::uint64_t raw) {
    const auto it = std::lower_bound(
        out.in_count.begin(), out.in_count.end(), raw,
        [](const auto& entry, std::uint64_t key) { return entry.first < key; });
    return it->second;
  };
  const auto escape_min_of = [&](std::size_t index,
                                 std::vector<std::size_t>& sink) {
    const IdSet* pd = view.pd_of(members[index]);
    if (pd == nullptr) return;
    std::size_t min_count = 0;
    bool any_outside = false;
    for (ProcessId t : *pd) {
      if (s1_probe.contains(t)) continue;
      const std::size_t c = count_of(t.raw());
      min_count = any_outside ? std::min(min_count, c) : c;
      any_outside = true;
    }
    if (any_outside) sink.push_back(min_count);
  };
  if (pool != nullptr) {
    out.escape_min = chunked_concat<std::size_t>(
        *pool, members.size(),
        [&](std::size_t begin, std::size_t end,
            std::vector<std::size_t>& slot) {
          for (std::size_t i = begin; i < end; ++i) escape_min_of(i, slot);
        });
  } else {
    for (std::size_t i = 0; i < members.size(); ++i) {
      escape_min_of(i, out.escape_min);
    }
  }
  std::sort(out.escape_min.begin(), out.escape_min.end());
  return out;
}

/// S2 at threshold g: outside processes pointed to by more than g members
/// of S1 (property P4). in_count is ascending, so inserts are ordered
/// appends.
IdSet s2_at(const OutsideCounts& counts, std::size_t g) {
  IdSet s2;
  for (const auto& [raw, count] : counts.in_count) {
    if (count > g) s2.insert(ProcessId(raw));
  }
  return s2;
}

/// Members of S1 whose PD escapes S1 ∪ S2(g) (property P3, erratum order).
std::size_t escapes_at(const OutsideCounts& counts, std::size_t g) {
  return static_cast<std::size_t>(
      std::upper_bound(counts.escape_min.begin(), counts.escape_min.end(), g) -
      counts.escape_min.begin());
}

graph::Digraph induced_knowledge(const KnowledgeView& view, const IdSet& s1,
                                 const AdaptiveIdProbe& s1_probe) {
  graph::Digraph g;
  for (ProcessId id : s1) g.add_vertex(id);
  for (ProcessId id : s1) {
    const IdSet* pd = view.pd_of(id);
    if (pd == nullptr) continue;
    // A PD is a set, so each (id, t) pair occurs once — the unchecked
    // insert keeps a dense S1 (the big-SCC certification path evaluates
    // near-complete components) quadratic instead of cubic.
    for (ProcessId t : *pd) {
      if (s1_probe.contains(t)) g.add_edge_unchecked(id, t);
    }
  }
  return g;
}

}  // namespace

std::optional<IdSet> is_sink(const KnowledgeView& view, std::size_t f,
                             const IdSet& s1) {
  // P1: size and "connectivity of S1 is computable" (S1 ⊆ S_received).
  if (s1.size() < 2 * f + 1) return std::nullopt;
  if (!s1.is_subset_of(view.received())) return std::nullopt;

  const AdaptiveIdProbe s1_probe(s1);

  // P2: κ(K[S1]) >= f+1.
  const graph::Digraph sub = induced_knowledge(view, s1, s1_probe);
  if (!graph::is_k_strongly_connected(sub, f + 1)) return std::nullopt;

  // P4 then P3 (erratum order; see header).
  const OutsideCounts counts = outside_counts(view, s1, s1_probe);
  if (escapes_at(counts, f) > f) return std::nullopt;
  return s2_at(counts, f);
}

bool is_sink(const KnowledgeView& view, std::size_t f, const IdSet& s1,
             const IdSet& s2) {
  const auto derived = is_sink(view, f, s1);
  return derived.has_value() && *derived == s2;
}

namespace {

/// The κ + split computation proper; callers have already handled the
/// not-fully-received early-out. `probe_words` optionally backs the
/// adaptive S1 probe with reusable (arena) storage.
EvalScratch::SplitMemo compute_thresholds(
    const KnowledgeView& view, const IdSet& s1,
    std::pmr::vector<std::uint64_t>* probe_words) {
  EvalScratch::SplitMemo out;
  const AdaptiveIdProbe s1_probe(s1, probe_words);
  out.kappa = graph::strong_connectivity(induced_knowledge(view, s1, s1_probe));
  if (out.kappa == 0) return out;

  // g is bounded by P2 (g <= κ-1) and P1 (2g+1 <= |S1|). One counting pass
  // serves every threshold.
  const OutsideCounts counts = outside_counts(view, s1, s1_probe);
  const std::size_t g_max = std::min(out.kappa - 1, (s1.size() - 1) / 2);
  for (std::size_t g = 0; g <= g_max; ++g) {
    if (escapes_at(counts, g) <= g) {
      out.splits.push_back({g, s2_at(counts, g)});
    }
  }
  return out;
}

}  // namespace

std::vector<AdmissibleSplit> admissible_thresholds(const KnowledgeView& view,
                                                   const IdSet& s1) {
  if (s1.empty() || !s1.is_subset_of(view.received())) return {};
  return compute_thresholds(view, s1, nullptr).splits;
}

const std::vector<AdmissibleSplit>& admissible_thresholds_memo(
    const KnowledgeView& view, const IdSet& s1, EvalScratch& scratch) {
  return admissible_thresholds_padded(view, s1, nullptr, scratch);
}

const std::vector<AdmissibleSplit>& admissible_thresholds_padded(
    const KnowledgeView& view, const IdSet& s1, const EvalScratch* shared,
    EvalScratch& local) {
  static const std::vector<AdmissibleSplit> kEmpty;
  // A not-fully-received S1 has no splits but may gain some later; it must
  // not be stored (the memo has no invalidation by design).
  if (s1.empty() || !s1.is_subset_of(view.received())) return kEmpty;
  if (shared != nullptr) {
    if (const auto it = shared->splits.find(s1); it != shared->splits.end()) {
      ++local.stats.split_hits;
      return it->second.splits;
    }
  }
  if (const auto it = local.splits.find(s1); it != local.splits.end()) {
    ++local.stats.split_hits;
    return it->second.splits;
  }
  ++local.stats.split_misses;
  return local.splits
      .emplace(s1, compute_thresholds(view, s1, &local.probe_words))
      .first->second.splits;
}

std::optional<std::size_t> is_sink_star(const KnowledgeView& view,
                                        const IdSet& s) {
  const IdSet base = s.set_intersection(view.received());
  assert(base.size() <= 24 && "is_sink_star is exhaustive; candidate too big");
  const auto& ids = base.values();
  const std::size_t n = ids.size();
  // Release-build backstop for the assert above: a 64-bit mask cannot
  // enumerate 2^64 subsets, and shifting by >= 64 is UB. Such a candidate
  // cannot be evaluated — report "not a sink" instead of corrupting memory.
  if (n >= 64) return std::nullopt;

  std::optional<std::size_t> best;
  // Enumerate S1 ⊆ S ∩ S_received (non-empty).
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    IdSet s1;
    s1.reserve(static_cast<std::size_t>(std::popcount(mask)));
    for (std::size_t b = 0; b < n; ++b) {
      if (mask & (std::uint64_t{1} << b)) s1.insert(ids[b]);
    }
    // The split must cover S exactly: S2 = S \ S1 is forced.
    const IdSet wanted_s2 = s.set_difference(s1);
    for (const AdmissibleSplit& split : admissible_thresholds(view, s1)) {
      if (split.s2 == wanted_s2) {
        if (!best || split.g > *best) best = split.g;
      }
    }
  }
  return best;
}

}  // namespace bftcup::protocol

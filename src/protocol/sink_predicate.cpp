#include "protocol/sink_predicate.hpp"

#include <bit>
#include <cassert>

#include "graph/connectivity.hpp"
#include "graph/scc.hpp"
#include "protocol/eval_cache.hpp"

namespace bftcup::protocol {
namespace {

/// Derives S2 for a given (f, S1): every known process outside S1 pointed to
/// by more than f members of S1 (property P4).
IdSet derive_s2(const KnowledgeView& view, std::size_t f, const IdSet& s1) {
  IdSet s2;
  for (ProcessId j : view.known().set_difference(s1)) {
    if (view.in_degree_from(s1, j) > f) s2.insert(j);
  }
  return s2;
}

/// Property P3 under the erratum reading: members of S1 whose PD escapes
/// S1 ∪ S2.
std::size_t escape_count(const KnowledgeView& view, const IdSet& s1,
                         const IdSet& s2) {
  const IdSet inside = s1.set_union(s2);
  std::size_t count = 0;
  for (ProcessId i : s1) {
    const IdSet* pd = view.pd_of(i);
    if (pd == nullptr) continue;
    for (ProcessId t : *pd) {
      if (!inside.contains(t)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

graph::Digraph induced_knowledge(const KnowledgeView& view, const IdSet& s1) {
  graph::Digraph g;
  for (ProcessId id : s1) g.add_vertex(id);
  for (ProcessId id : s1) {
    const IdSet* pd = view.pd_of(id);
    if (pd == nullptr) continue;
    for (ProcessId t : *pd) {
      if (s1.contains(t)) g.add_edge(id, t);
    }
  }
  return g;
}

}  // namespace

std::optional<IdSet> is_sink(const KnowledgeView& view, std::size_t f,
                             const IdSet& s1) {
  // P1: size and "connectivity of S1 is computable" (S1 ⊆ S_received).
  if (s1.size() < 2 * f + 1) return std::nullopt;
  if (!s1.is_subset_of(view.received())) return std::nullopt;

  // P2: κ(K[S1]) >= f+1.
  const graph::Digraph sub = induced_knowledge(view, s1);
  if (!graph::is_k_strongly_connected(sub, f + 1)) return std::nullopt;

  // P4 then P3 (erratum order; see header).
  IdSet s2 = derive_s2(view, f, s1);
  if (escape_count(view, s1, s2) > f) return std::nullopt;
  return s2;
}

bool is_sink(const KnowledgeView& view, std::size_t f, const IdSet& s1,
             const IdSet& s2) {
  const auto derived = is_sink(view, f, s1);
  return derived.has_value() && *derived == s2;
}

namespace {

/// The κ + split computation proper; callers have already handled the
/// not-fully-received early-out.
EvalScratch::SplitMemo compute_thresholds(const KnowledgeView& view,
                                          const IdSet& s1) {
  EvalScratch::SplitMemo out;
  out.kappa = graph::strong_connectivity(induced_knowledge(view, s1));
  if (out.kappa == 0) return out;

  // g is bounded by P2 (g <= κ-1) and P1 (2g+1 <= |S1|).
  const std::size_t g_max = std::min(out.kappa - 1, (s1.size() - 1) / 2);
  for (std::size_t g = 0; g <= g_max; ++g) {
    IdSet s2 = derive_s2(view, g, s1);
    if (escape_count(view, s1, s2) <= g) {
      out.splits.push_back({g, std::move(s2)});
    }
  }
  return out;
}

}  // namespace

std::vector<AdmissibleSplit> admissible_thresholds(const KnowledgeView& view,
                                                   const IdSet& s1) {
  if (s1.empty() || !s1.is_subset_of(view.received())) return {};
  return compute_thresholds(view, s1).splits;
}

const std::vector<AdmissibleSplit>& admissible_thresholds_memo(
    const KnowledgeView& view, const IdSet& s1, EvalScratch& scratch) {
  static const std::vector<AdmissibleSplit> kEmpty;
  // A not-fully-received S1 has no splits but may gain some later; it must
  // not be stored (the memo has no invalidation by design).
  if (s1.empty() || !s1.is_subset_of(view.received())) return kEmpty;
  if (const auto it = scratch.splits.find(s1); it != scratch.splits.end()) {
    ++scratch.stats.split_hits;
    return it->second.splits;
  }
  ++scratch.stats.split_misses;
  return scratch.splits.emplace(s1, compute_thresholds(view, s1))
      .first->second.splits;
}

std::optional<std::size_t> is_sink_star(const KnowledgeView& view,
                                        const IdSet& s) {
  const IdSet base = s.set_intersection(view.received());
  assert(base.size() <= 24 && "is_sink_star is exhaustive; candidate too big");
  const auto& ids = base.values();
  const std::size_t n = ids.size();
  // Release-build backstop for the assert above: a 64-bit mask cannot
  // enumerate 2^64 subsets, and shifting by >= 64 is UB. Such a candidate
  // cannot be evaluated — report "not a sink" instead of corrupting memory.
  if (n >= 64) return std::nullopt;

  std::optional<std::size_t> best;
  // Enumerate S1 ⊆ S ∩ S_received (non-empty).
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
    IdSet s1;
    s1.reserve(static_cast<std::size_t>(std::popcount(mask)));
    for (std::size_t b = 0; b < n; ++b) {
      if (mask & (std::uint64_t{1} << b)) s1.insert(ids[b]);
    }
    // The split must cover S exactly: S2 = S \ S1 is forced.
    const IdSet wanted_s2 = s.set_difference(s1);
    for (const AdmissibleSplit& split : admissible_thresholds(view, s1)) {
      if (split.s2 == wanted_s2) {
        if (!best || split.g > *best) best = split.g;
      }
    }
  }
  return best;
}

}  // namespace bftcup::protocol

#include "protocol/consensus.hpp"

namespace bftcup::protocol {

void ValueExchange::request(const IdSet& members, sim::Context& ctx) {
  asked_members_ = members;
  needed_ = (members.size() + 1 + 1) / 2;  // ⌈(|S|+1)/2⌉
  msg::Message m;
  m.type = msg::MsgType::kGetDecidedVal;
  ctx.broadcast(members, msg::MessageRef::make(std::move(m)));
}

void ValueExchange::set_local_decision(Value value, sim::Context& ctx) {
  if (local_decision_) return;
  local_decision_ = value;
  for (ProcessId requester : pending_) reply(requester, ctx);
  pending_.clear();
}

void ValueExchange::reply(ProcessId to, sim::Context& ctx) {
  msg::Message m;
  m.type = msg::MsgType::kDecidedVal;
  m.value = *local_decision_;
  // Signed so a hostile wire cannot flip value bits in transit and have
  // the forgery counted as this process's vote (fixed-width signature, no
  // rng draw — byte counts and digests of wire-off runs are unchanged).
  m.sig = ctx.signer().sign(msg::decided_val_payload(m.value));
  ctx.send(to, std::move(m));
}

bool ValueExchange::handle_message(ProcessId from, const msg::Message& message,
                                   sim::Context& ctx) {
  switch (message.type) {
    case msg::MsgType::kGetDecidedVal:
      // Line 9: wait until val != ⊥, then answer.
      if (local_decision_) {
        reply(from, ctx);
      } else {
        pending_.insert(from);
      }
      return true;
    case msg::MsgType::kDecidedVal: {
      // Line 7: count identical answers from distinct members. Only votes
      // the channel sender actually signed count — a mutated frame must
      // not be attributable to a correct member.
      if (fetched_ || !asked_members_.contains(from)) return true;
      if (!ctx.verifier().verify(from, msg::decided_val_payload(message.value),
                                 message.sig)) {
        return true;
      }
      IdSet& who = answers_[message.value];
      who.insert(from);
      if (who.size() >= needed_) fetched_ = message.value;
      return true;
    }
    default:
      return false;
  }
}

}  // namespace bftcup::protocol

// Participant detector oracle (paper §II-C).
//
// PD_i returns the (fixed) set of processes that i can initially contact.
// In deployments this is bootstrap configuration; here it is materialized
// from a knowledge connectivity graph: PD_i = out-neighbors of i.
#pragma once

#include <map>

#include "common/types.hpp"
#include "graph/digraph.hpp"

namespace bftcup::pd {

class ParticipantDetector {
 public:
  ParticipantDetector() = default;

  [[nodiscard]] static ParticipantDetector from_graph(const graph::Digraph& g);

  void set(ProcessId id, IdSet pd);

  /// PD_i; the empty set for unknown ids (a process that knows nobody).
  [[nodiscard]] const IdSet& pd_of(ProcessId id) const;

  [[nodiscard]] const std::map<ProcessId, IdSet>& all() const { return pds_; }

 private:
  std::map<ProcessId, IdSet> pds_;
  IdSet empty_;
};

}  // namespace bftcup::pd

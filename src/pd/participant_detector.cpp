#include "pd/participant_detector.hpp"

namespace bftcup::pd {

ParticipantDetector ParticipantDetector::from_graph(const graph::Digraph& g) {
  ParticipantDetector pd;
  for (ProcessId id : g.vertices()) {
    pd.set(id, g.out_neighbors(id));
  }
  return pd;
}

void ParticipantDetector::set(ProcessId id, IdSet pd) {
  pds_[id] = std::move(pd);
}

const IdSet& ParticipantDetector::pd_of(ProcessId id) const {
  auto it = pds_.find(id);
  return it == pds_.end() ? empty_ : it->second;
}

}  // namespace bftcup::pd
